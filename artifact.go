package surf

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"slices"

	"surf/internal/core"
	"surf/internal/gbt"
	"surf/internal/stats"
)

// Engine-level surrogate artifacts. The paper's deployment story
// (Section V-D) is "train once, reuse": surrogates are light enough
// to always live in memory while the data stays on disk, so the
// trained model is the durable asset. An artifact therefore carries
// more than the ensemble: the spec it was trained for (statistic,
// filter columns, target), the domain it was trained over and its
// training provenance travel with the weights, and LoadSurrogate
// refuses an artifact whose spec does not match the engine it is
// loaded into — a model is only meaningful next to the question it
// answers.
//
// Wire format: an ASCII header line "surfengine <version>\n" followed
// by one gob-encoded envelope. The header keeps the version readable
// before any decoding; the envelope nests the ensemble as opaque
// bytes in the internal/gbt wire form, which is fully re-validated on
// load. Version 1 is the only version so far; readers reject higher
// versions rather than guess.

// artifactVersion is the current engine-artifact format version.
const artifactVersion = 1

// artifactMagic starts the header line of every engine artifact;
// legacyMagic identifies the pre-artifact format (bare dimensionality
// header + model), which LoadSurrogate still accepts.
const (
	artifactMagic = "surfengine"
	legacyMagic   = "surfmodel"
)

// artifactEnvelope is the gob wire form of an engine artifact.
type artifactEnvelope struct {
	Info SurrogateInfo
	// CustomStatistic marks Info.Statistic as registered via
	// CustomStatistic rather than built in, so load failures can say
	// "register it first" instead of "corrupt artifact".
	CustomStatistic bool
	// Model is the ensemble in the internal gbt wire encoding.
	Model []byte
}

// SaveSurrogate persists the engine's current surrogate as a
// versioned artifact: the trained ensemble together with the spec it
// approximates (statistic, filter columns, target), the training
// domain and the training metadata exposed by SurrogateInfo.
// LoadSurrogate on an engine with a matching spec restores it with
// bit-identical predictions.
func (e *Engine) SaveSurrogate(w io.Writer) error {
	return e.SaveSurrogateContext(context.Background(), w)
}

// SaveSurrogateContext is SaveSurrogate with cancellation, checked
// before the artifact is assembled and before it is written.
func (e *Engine) SaveSurrogateContext(ctx context.Context, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sn := e.surrogate.Load()
	if sn.surr == nil {
		return ErrNoSurrogate
	}
	var model bytes.Buffer
	if err := sn.surr.Model().Save(&model); err != nil {
		return err
	}
	env := artifactEnvelope{
		Info:            sn.info,
		CustomStatistic: e.spec.Stat.IsCustom(),
		Model:           model.Bytes(),
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %d\n", artifactMagic, artifactVersion); err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(env); err != nil {
		// A write/encode failure is an I/O problem, not a bad
		// artifact; ErrBadArtifact is a load-side classification.
		return fmt.Errorf("surf: encode artifact: %w", err)
	}
	return bw.Flush()
}

// LoadSurrogate restores a surrogate saved with SaveSurrogate and
// atomically swaps it in, rebuilding the compiled inference snapshot;
// predictions after the load are bit-identical to the saved engine's.
// The artifact's spec must match the engine's: same filter columns,
// same statistic (a custom statistic must be registered in this
// process first), same target column. Mismatches are reported with
// ErrBadArtifact before the engine's current surrogate is touched.
// Artifacts in the legacy dimensionality-header format load too,
// with provenance limited to what the engine itself knows.
func (e *Engine) LoadSurrogate(r io.Reader) error {
	return e.LoadSurrogateContext(context.Background(), r)
}

// LoadSurrogateContext is LoadSurrogate with cancellation, checked
// before decoding and before the loaded model is swapped in.
func (e *Engine) LoadSurrogateContext(ctx context.Context, r io.Reader) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(artifactMagic))
	if err != nil && len(magic) < len(legacyMagic) {
		return fmt.Errorf("%w: reading header: %v", ErrBadArtifact, err)
	}
	var sn *snapshot
	switch {
	case bytes.HasPrefix(magic, []byte(artifactMagic)):
		sn, err = e.loadArtifact(br)
	case bytes.HasPrefix(magic, []byte(legacyMagic)):
		sn, err = e.loadLegacy(br)
	default:
		return fmt.Errorf("%w: unrecognized header %q", ErrBadArtifact, magic)
	}
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	e.swapSnapshot(func(*snapshot) *snapshot { return sn })
	return nil
}

// decodeArtifactEnvelope reads the versioned-artifact header and gob
// envelope off br, shared by LoadSurrogate and ReadSurrogateInfo.
func decodeArtifactEnvelope(br *bufio.Reader) (artifactEnvelope, error) {
	var version int
	if _, err := fmt.Fscanf(br, artifactMagic+" %d\n", &version); err != nil {
		return artifactEnvelope{}, fmt.Errorf("%w: bad header: %v", ErrBadArtifact, err)
	}
	if version < 1 || version > artifactVersion {
		return artifactEnvelope{}, fmt.Errorf("%w: format version %d (this build reads up to %d)",
			ErrBadArtifact, version, artifactVersion)
	}
	var env artifactEnvelope
	if err := gob.NewDecoder(br).Decode(&env); err != nil {
		return artifactEnvelope{}, fmt.Errorf("%w: decode: %v", ErrBadArtifact, err)
	}
	return env, nil
}

// ReadSurrogateInfo reads the provenance metadata of a versioned
// engine artifact (written by SaveSurrogate) without loading the model
// into an engine: the statistic, filter columns, training domain and
// hyper-parameters the artifact declares. Deployment layers use it to
// validate an artifact against a serving spec — and to report model
// metadata — before paying for a full load; the ensemble bytes are not
// validated here (LoadSurrogate re-validates them completely). Legacy
// surfmodel artifacts carry no metadata and are rejected with
// ErrBadArtifact.
func ReadSurrogateInfo(r io.Reader) (SurrogateInfo, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(artifactMagic))
	if err != nil {
		return SurrogateInfo{}, fmt.Errorf("%w: reading header: %v", ErrBadArtifact, err)
	}
	if !bytes.HasPrefix(magic, []byte(artifactMagic)) {
		if bytes.HasPrefix(magic, []byte(legacyMagic)) {
			return SurrogateInfo{}, fmt.Errorf("%w: legacy %s artifact carries no metadata", ErrBadArtifact, legacyMagic)
		}
		return SurrogateInfo{}, fmt.Errorf("%w: unrecognized header %q", ErrBadArtifact, magic)
	}
	env, err := decodeArtifactEnvelope(br)
	if err != nil {
		return SurrogateInfo{}, err
	}
	return env.Info, nil
}

// loadArtifact decodes a versioned engine artifact and validates it
// against the engine's spec.
func (e *Engine) loadArtifact(br *bufio.Reader) (*snapshot, error) {
	env, err := decodeArtifactEnvelope(br)
	if err != nil {
		return nil, err
	}
	if err := e.checkArtifactSpec(env); err != nil {
		return nil, err
	}
	model, err := gbt.Load(bytes.NewReader(env.Model))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	surr, err := core.NewSurrogateFromModel(model, e.Dims())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	return &snapshot{surr: surr, info: env.Info}, nil
}

// checkArtifactSpec verifies the artifact was trained for the spec
// this engine computes. The domain deliberately is not checked: data
// grows between training and serving, and the artifact's training
// domain stays inspectable via SurrogateInfo.
func (e *Engine) checkArtifactSpec(env artifactEnvelope) error {
	kind, err := stats.ParseKind(env.Info.Statistic)
	if err != nil {
		if env.CustomStatistic {
			return fmt.Errorf("%w: custom statistic %q is not registered in this process; register it with CustomStatistic before loading",
				ErrBadArtifact, env.Info.Statistic)
		}
		return fmt.Errorf("%w: unknown statistic %q", ErrBadArtifact, env.Info.Statistic)
	}
	if kind != e.spec.Stat {
		return fmt.Errorf("%w: artifact trained for statistic %q, engine computes %q",
			ErrBadArtifact, env.Info.Statistic, e.spec.Stat)
	}
	if got, want := env.Info.FilterColumns, e.filterNames(); !slices.Equal(got, want) {
		if len(got) != len(want) {
			// Also a dimensionality mismatch; satisfy both sentinels so
			// errors.Is(err, ErrDimMismatch) keeps working as it did for
			// the legacy format.
			return fmt.Errorf("%w: %w: artifact trained over filter columns %v, engine uses %v",
				ErrBadArtifact, ErrDimMismatch, got, want)
		}
		return fmt.Errorf("%w: artifact trained over filter columns %v, engine uses %v",
			ErrBadArtifact, got, want)
	}
	if e.spec.Stat.NeedsTarget() {
		want := e.names[e.spec.TargetCol]
		if env.Info.TargetColumn != want {
			return fmt.Errorf("%w: artifact aggregates target column %q, engine aggregates %q",
				ErrBadArtifact, env.Info.TargetColumn, want)
		}
	}
	if len(env.Info.DomainMin) != e.Dims() || len(env.Info.DomainMax) != e.Dims() {
		return fmt.Errorf("%w: artifact domain has %d/%d bounds for %d filter columns",
			ErrBadArtifact, len(env.Info.DomainMin), len(env.Info.DomainMax), e.Dims())
	}
	return nil
}

// loadLegacy reads the pre-artifact format (dimensionality header +
// bare model). It carries no spec, so only the dimensionality can be
// verified; the provenance is reconstructed from the engine's own
// configuration with the training fields left zero.
func (e *Engine) loadLegacy(br *bufio.Reader) (*snapshot, error) {
	surr, err := core.LoadSurrogate(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	if surr.Dims() != e.Dims() {
		return nil, fmt.Errorf("%w: surrogate of dimension %d for engine of dimension %d",
			ErrDimMismatch, surr.Dims(), e.Dims())
	}
	// The legacy format predates training metadata: TrainedQueries
	// stays 0 (unknown) while the hyper-parameter fields describe the
	// loaded model itself.
	info := e.surrogateInfoFor(surr, 0, false)
	return &snapshot{surr: surr, info: info}, nil
}
