package surf

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestRegionJSONRoundTrip round-trips a region with non-finite fields
// through its JSON form.
func TestRegionJSONRoundTrip(t *testing.T) {
	r := Region{
		Min: []float64{0.1, -2}, Max: []float64{0.4, 3},
		Estimate: 42.5, Score: math.Inf(-1), Worms: 7,
		TrueValue: math.NaN(), Verified: true, Satisfies: false,
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"min"`, `"max"`, `"estimate"`, `"true_value"`, `"NaN"`, `"-Inf"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("encoding %s lacks %s", b, key)
		}
	}
	var back Region
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Min[0] != r.Min[0] || back.Max[1] != r.Max[1] || back.Estimate != r.Estimate {
		t.Errorf("round trip changed bounds: %+v", back)
	}
	if !math.IsNaN(back.TrueValue) || !math.IsInf(back.Score, -1) {
		t.Errorf("non-finite fields lost: %+v", back)
	}
	if back.Worms != 7 || !back.Verified || back.Satisfies {
		t.Errorf("scalar fields lost: %+v", back)
	}
}

// TestResultJSONRoundTrip round-trips a result, including the
// NaN compliance rate of an unverified run and the empty-regions
// encoding.
func TestResultJSONRoundTrip(t *testing.T) {
	res := Result{
		Regions: []Region{{
			Min: []float64{0}, Max: []float64{1}, Estimate: 5,
		}},
		ValidParticleFraction: 0.75,
		ComplianceRate:        math.NaN(),
		ElapsedSeconds:        1.25,
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Regions) != 1 || back.Regions[0].Estimate != 5 {
		t.Errorf("regions lost: %+v", back)
	}
	if back.ValidParticleFraction != 0.75 || !math.IsNaN(back.ComplianceRate) || back.ElapsedSeconds != 1.25 {
		t.Errorf("figures lost: %+v", back)
	}

	empty, err := json.Marshal(Result{ComplianceRate: math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), `"regions":[]`) {
		t.Errorf("empty result encodes regions as %s, want []", empty)
	}
}

// TestQueryJSON decodes the documented client-facing field names.
func TestQueryJSON(t *testing.T) {
	var q Query
	err := json.Unmarshal([]byte(`{
		"threshold": 100, "above": true, "c": 2.5, "max_regions": 8,
		"use_true_function": true, "use_kde": true, "kde_sample": 500,
		"glowworms": 40, "iterations": 60, "min_side_frac": 0.02,
		"max_side_frac": 0.2, "workers": 4, "skip_verify": true,
		"cluster_extents": true, "seed": 9
	}`), &q)
	if err != nil {
		t.Fatal(err)
	}
	want := Query{
		Threshold: 100, Above: true, C: 2.5, MaxRegions: 8,
		UseTrueFunction: true, UseKDE: true, KDESample: 500,
		Glowworms: 40, Iterations: 60, MinSideFrac: 0.02,
		MaxSideFrac: 0.2, Workers: 4, SkipVerify: true,
		ClusterExtents: true, Seed: 9,
	}
	if q != want {
		t.Errorf("decoded %+v,\nwant %+v", q, want)
	}

	var tk TopKQuery
	err = json.Unmarshal([]byte(`{"k": 5, "largest": true, "c": 3, "use_true_function": true, "skip_verify": true, "seed": 2}`), &tk)
	if err != nil {
		t.Fatal(err)
	}
	if tk.K != 5 || !tk.Largest || tk.C != 3 || !tk.UseTrueFunction || !tk.SkipVerify || tk.Seed != 2 {
		t.Errorf("decoded %+v", tk)
	}
}

// TestEventJSONRoundTrip round-trips each event type through
// MarshalEvent/UnmarshalEvent.
func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		EventIteration{Iteration: 3, MeanFitness: math.NaN(), MeanLuciferin: 5.5, ValidParticleFraction: 0.25, Moved: 40},
		EventRegion{Iteration: 9, Region: Region{Min: []float64{0.2}, Max: []float64{0.6}, Estimate: 11, Worms: 3}},
		EventDone{Result: &Result{ComplianceRate: math.NaN(), Regions: []Region{{Min: []float64{0}, Max: []float64{1}}}}},
	}
	for _, ev := range events {
		b, err := MarshalEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalEvent(b)
		if err != nil {
			t.Fatalf("decode %s: %v", b, err)
		}
		switch orig := ev.(type) {
		case EventIteration:
			got, ok := back.(EventIteration)
			if !ok || got.Iteration != orig.Iteration || !math.IsNaN(got.MeanFitness) || got.Moved != orig.Moved {
				t.Errorf("iteration round trip: %+v", back)
			}
		case EventRegion:
			got, ok := back.(EventRegion)
			if !ok || got.Iteration != orig.Iteration || got.Region.Estimate != orig.Region.Estimate {
				t.Errorf("region round trip: %+v", back)
			}
		case EventDone:
			got, ok := back.(EventDone)
			if !ok || len(got.Result.Regions) != 1 || !math.IsNaN(got.Result.ComplianceRate) {
				t.Errorf("done round trip: %+v", back)
			}
		}
	}
	if _, err := UnmarshalEvent([]byte(`{"type":"mystery"}`)); err == nil {
		t.Error("unknown event type accepted")
	}
	if _, err := UnmarshalEvent([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
