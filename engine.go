package surf

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"surf/internal/core"
	"surf/internal/dataset"
	"surf/internal/gbt/kernel"
	"surf/internal/geom"
	"surf/internal/ml"
)

// Dataset is an immutable, in-memory columnar dataset.
type Dataset struct {
	inner *dataset.Dataset
}

// NewDataset builds a dataset from named float columns (ownership of
// the column slices passes to the dataset).
func NewDataset(names []string, cols [][]float64) (*Dataset, error) {
	d, err := dataset.New(names, cols)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: d}, nil
}

// ReadCSVDataset reads a numeric CSV with a header row.
func ReadCSVDataset(r io.Reader) (*Dataset, error) {
	d, err := dataset.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: d}, nil
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return d.inner.Len() }

// Names returns the column names.
func (d *Dataset) Names() []string { return d.inner.Names() }

// Column returns a copy of the named column (nil if absent).
func (d *Dataset) Column(name string) []float64 {
	i := d.inner.ColByName(name)
	if i < 0 {
		return nil
	}
	return append([]float64(nil), d.inner.Col(i)...)
}

// WriteCSV writes the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error { return d.inner.WriteCSV(w) }

// Slice returns a view of rows [lo, hi) sharing the receiver's column
// storage — datasets are immutable, so no rows are copied. This is the
// substrate of sharded execution: a registry entry splits one dataset
// into row-range shards, opens an engine per shard, and merges the
// per-shard results, at no extra memory cost for the row data.
func (d *Dataset) Slice(lo, hi int) (*Dataset, error) {
	inner, err := d.inner.Slice(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return &Dataset{inner: inner}, nil
}

// Config describes what a region query computes over a dataset.
type Config struct {
	// FilterColumns are the columns the hyper-rectangles constrain,
	// in region-dimension order.
	FilterColumns []string
	// Statistic is the aggregate extracted from each region.
	Statistic Statistic
	// TargetColumn is the aggregated column (ignored for Count). Per
	// the paper's Definition 2 it must not also be a filter column.
	TargetColumn string
	// UseGridIndex builds a uniform grid index for true-function
	// evaluations instead of linear scans. Recommended for repeated
	// evaluation on low-dimensional data. Ignored when a Backend is
	// plugged in via WithBackend.
	UseGridIndex bool
}

// Backend computes the true statistic function f over regions. The
// built-in backends scan (or grid-index) the engine's in-memory
// dataset; WithBackend plugs in alternatives — a remote column store,
// an approximate engine, an instrumented wrapper — without changing
// the rest of the pipeline. Implementations must be safe for
// concurrent calls.
type Backend interface {
	// EvaluateRegion returns the statistic over the hyper-rectangle
	// [center−halfSides, center+halfSides] and the number of data rows
	// inside it. For statistics undefined on empty regions the value
	// is NaN and the count 0.
	EvaluateRegion(center, halfSides []float64) (value float64, count int)
}

// backendEvaluator adapts a caller-supplied Backend to the internal
// evaluator interface used by workload generation and verification.
type backendEvaluator struct {
	b    Backend
	spec dataset.Spec
	dims int
}

func (e backendEvaluator) Evaluate(r geom.Rect) (float64, int) {
	return e.b.EvaluateRegion(r.Center(), r.HalfSides())
}
func (e backendEvaluator) Spec() dataset.Spec { return e.spec }
func (e backendEvaluator) Dims() int          { return e.dims }

// Engine couples a dataset with a region-query spec, a true-function
// backend, a (lazy) surrogate model, and the mining pipeline.
//
// An Engine is safe for concurrent use: queries operate on an atomic
// snapshot of the surrogate, so TrainSurrogate, TrainSurrogateContext
// and LoadSurrogate may swap the model while Find calls are running.
// A query that starts before a swap completes finishes against the
// model it started with; use Session to pin one snapshot across
// several calls. Each snapshot carries a compiled flat-array form of
// its ensemble, rebuilt on every train/load and swapped atomically
// with it, which Find, FindTopK and PredictStatisticBatch use to
// evaluate whole probe batches per model pass.
type Engine struct {
	spec     dataset.Spec
	names    []string // column names, the fixed schema across data versions
	observer func(Event)
	kernel   kernel.Backend
	// useGrid and backend remember how Open built the evaluator so
	// SetDataset can rebuild it the same way for a new data version;
	// domainFixed records a WithDomain override, which data swaps
	// preserve instead of re-deriving the domain from the rows.
	useGrid     bool
	backend     Backend
	domainFixed bool
	// surrogate holds the engine's current snapshot — always non-nil:
	// Open publishes a model-free snapshot carrying the v1 data view,
	// and every later swap (train, load, SetDataset) replaces it whole.
	surrogate atomic.Pointer[snapshot]
	snapGen   atomic.Uint64
	// snapMu serializes snapshot writers (train, load, SetDataset) so
	// a data swap can never lose a concurrent model swap or vice
	// versa. The read path never touches it: queries pin the snapshot
	// with one atomic load.
	snapMu sync.Mutex
	cache  *resultCache
}

// dataView pins one immutable dataset version together with the
// evaluator and domain derived from it. Views ride inside snapshots,
// so every query reads its statistic from exactly the data version
// the snapshot was published with — a concurrent append (SetDataset)
// swaps in a new view without disturbing in-flight readers.
type dataView struct {
	data      *dataset.Dataset
	evaluator dataset.Evaluator
	domain    geom.Rect
	version   uint64
}

// snapshot pairs a surrogate (possibly nil before any training) with
// the pinned data view it serves over, the metadata describing how
// the model was produced, and a generation number unique within its
// engine. The engine swaps whole snapshots atomically, so a query (or
// Session) pinning one sees a model, a data version and provenance
// that can never disagree; result-cache keys embed the generation,
// which — unlike a pointer — can never be reused after the snapshot
// is garbage collected, and which bumps on data swaps exactly as on
// model swaps, invalidating cached results either way.
type snapshot struct {
	surr *core.Surrogate
	view *dataView
	info SurrogateInfo
	gen  uint64
}

// surrogate returns the snapshot's model, nil-safe so call sites can
// use the engine's current snapshot without an existence check.
func (sn *snapshot) surrogate() *core.Surrogate {
	if sn == nil {
		return nil
	}
	return sn.surr
}

// generation returns the snapshot's generation number; the
// no-surrogate state is generation 0 (the counter starts at 1).
func (sn *snapshot) generation() uint64 {
	if sn == nil {
		return 0
	}
	return sn.gen
}

// swapSnapshot is the single snapshot-replacement path (train, CV
// train, artifact and legacy loads, SetDataset). Under the writer
// mutex it reads the current snapshot, lets mut derive the next one
// from it, inherits the current data view when mut supplies none (a
// model swap keeps serving the data it trained against until the next
// data swap), recompiles the surrogate for the engine's inference
// backend (a no-op when it already serves through it), stamps the
// provenance with the backend actually serving — the scalar fallback
// when the configured backend cannot represent the ensemble — and the
// view's data version, assigns a fresh generation, and atomically
// swaps the snapshot in. The cache is cleared first — entries under
// older generations could never be served anyway (keys embed the
// generation), clearing just stops them crowding out live entries —
// so no moment exists where the new snapshot is visible alongside
// results that predate it, whether the swap changed the model, the
// data, or both.
func (e *Engine) swapSnapshot(mut func(cur *snapshot) *snapshot) {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	cur := e.surrogate.Load()
	sn := mut(cur)
	if sn.view == nil {
		sn.view = cur.view
	}
	if sn.surr != nil {
		sn.surr = sn.surr.Recompiled(e.kernel)
		sn.info.Kernel = sn.surr.Kernel().Name()
		sn.info.DataVersion = sn.view.version
	}
	sn.gen = e.snapGen.Add(1)
	e.cache.clear()
	e.surrogate.Store(sn)
}

// Open validates the config against the dataset and returns an engine.
// Options customize the engine beyond the Config: WithBackend plugs in
// a custom true-function evaluator, WithDomain overrides the region
// domain.
func Open(ds *Dataset, cfg Config, opts ...Option) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadConfig)
	}
	kind, ok := cfg.Statistic.kind()
	if !ok {
		return nil, fmt.Errorf("%w: unknown statistic %d", ErrBadConfig, int(cfg.Statistic))
	}
	if len(cfg.FilterColumns) == 0 {
		return nil, fmt.Errorf("%w: no filter columns", ErrBadConfig)
	}
	var eo engineOptions
	for _, opt := range opts {
		opt(&eo)
	}
	kb, err := resolveKernel(eo.kernelName)
	if err != nil {
		return nil, err
	}
	spec := dataset.Spec{Stat: kind}
	for _, name := range cfg.FilterColumns {
		i := ds.inner.ColByName(name)
		if i < 0 {
			return nil, fmt.Errorf("%w: filter column %q", ErrUnknownColumn, name)
		}
		spec.FilterCols = append(spec.FilterCols, i)
	}
	if spec.Stat.NeedsTarget() {
		i := ds.inner.ColByName(cfg.TargetColumn)
		if i < 0 {
			return nil, fmt.Errorf("%w: target column %q", ErrUnknownColumn, cfg.TargetColumn)
		}
		spec.TargetCol = i
	}
	if err := spec.Validate(ds.inner); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	dims := len(spec.FilterCols)

	var ev dataset.Evaluator
	switch {
	case eo.backend != nil:
		ev = backendEvaluator{b: eo.backend, spec: spec, dims: dims}
	case cfg.UseGridIndex:
		ev, err = dataset.NewGridIndex(ds.inner, spec, 0)
	default:
		ev, err = dataset.NewLinearScan(ds.inner, spec)
	}
	if err != nil {
		return nil, err
	}

	domain := ds.inner.Domain(spec.FilterCols)
	if eo.domainSet {
		if len(eo.domainMin) != dims || len(eo.domainMax) != dims {
			return nil, fmt.Errorf("%w: WithDomain bounds of length %d/%d for %d filter columns",
				ErrDimMismatch, len(eo.domainMin), len(eo.domainMax), dims)
		}
		for j := 0; j < dims; j++ {
			// Written to also reject NaN bounds, which compare false
			// under any ordering.
			if !(eo.domainMin[j] <= eo.domainMax[j]) {
				return nil, fmt.Errorf("%w: WithDomain bounds [%g, %g] invalid in dimension %d",
					ErrBadConfig, eo.domainMin[j], eo.domainMax[j], j)
			}
		}
		domain = geom.Rect{Min: eo.domainMin, Max: eo.domainMax}
	}

	// The result cache replays evaluator-derived values (TrueValue,
	// ComplianceRate, UseTrueFunction results), which is only sound
	// when the evaluator reads immutable data. The built-in evaluators
	// scan the engine's own immutable dataset; a WithBackend evaluator
	// may front a live store, so caching there is strictly opt-in via
	// WithResultCache.
	cacheSize := defaultCacheSize
	if eo.backend != nil {
		cacheSize = 0
	}
	if eo.cacheSet {
		cacheSize = eo.cacheSize
	}
	e := &Engine{
		spec:        spec,
		names:       ds.inner.Names(),
		observer:    eo.observer,
		kernel:      kb,
		useGrid:     cfg.UseGridIndex,
		backend:     eo.backend,
		domainFixed: eo.domainSet,
		cache:       newResultCache(cacheSize),
	}
	// The initial snapshot carries the v1 data view and no surrogate;
	// nobody can observe the engine before Open returns, so the plain
	// Store (generation 0 = the pre-model state) needs no swap
	// ceremony.
	e.surrogate.Store(&snapshot{
		view: &dataView{data: ds.inner, evaluator: ev, domain: domain, version: 1},
	})
	return e, nil
}

// resolveKernel maps the WithInferenceKernel option to an inference
// backend: an explicit name must be registered (unknown names are a
// config error, caught at Open rather than at the first prediction);
// with no option the SURF_KERNEL environment variable, then the
// built-in default, decide.
func resolveKernel(name string) (kernel.Backend, error) {
	if name == "" {
		name = os.Getenv(kernel.EnvVar)
	}
	if name == "" {
		return kernel.Default(), nil
	}
	b, ok := kernel.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown inference kernel %q (have %s)",
			ErrBadConfig, name, strings.Join(kernel.Names(), ", "))
	}
	return b, nil
}

// Dims returns the region dimensionality d.
func (e *Engine) Dims() int { return len(e.spec.FilterCols) }

// view returns the engine's current data view (always non-nil).
func (e *Engine) view() *dataView { return e.surrogate.Load().view }

// Domain returns the data-space bounding box of the filter columns as
// (min, max) slices, as of the engine's current data version.
func (e *Engine) Domain() (min, max []float64) {
	v := e.view()
	return append([]float64(nil), v.domain.Min...), append([]float64(nil), v.domain.Max...)
}

// Rows returns the number of data rows in the engine's current data
// version (0 for WithBackend engines whose dataset is only a schema).
func (e *Engine) Rows() int { return e.view().data.Len() }

// DataVersion returns the version of the dataset the engine currently
// serves: 1 for the dataset Open received, incremented by every
// SetDataset swap. Queries in flight during a swap finish against the
// version they pinned.
func (e *Engine) DataVersion() uint64 { return e.view().version }

// Evaluate computes the true statistic over the region [center ±
// halfSides] plus the number of rows inside, against the engine's
// current data version. This is the expensive back-end call the
// surrogate replaces — and the reference a drift monitor replays
// sampled queries against after appends.
func (e *Engine) Evaluate(center, halfSides []float64) (value float64, count int) {
	return e.view().evaluator.Evaluate(geom.FromCenter(center, halfSides))
}

// TrainSurrogate fits the engine's surrogate model f̂ on a workload
// and atomically swaps it in; queries already running keep the model
// they started with.
func (e *Engine) TrainSurrogate(w Workload, opts ...TrainOptions) error {
	return e.TrainSurrogateContext(context.Background(), w, opts...)
}

// TrainSurrogateContext is TrainSurrogate with cancellation, observed
// within one boosting round on every path: the plain fit, and — with
// HyperTune set — both between grid combinations and inside each
// combination's cross-validation fits. A cancelled call returns
// ctx.Err() promptly and leaves the engine's current surrogate
// untouched.
func (e *Engine) TrainSurrogateContext(ctx context.Context, w Workload, opts ...TrainOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var o TrainOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	var s *core.Surrogate
	var err error
	if o.HyperTune {
		folds := o.CVFolds
		if folds == 0 {
			folds = 3
		}
		s, _, err = core.TrainSurrogateCVContext(ctx, w.log, o.params(), ml.GBTGrid(), folds, o.Seed+1)
	} else {
		s, err = core.TrainSurrogateContext(ctx, w.log, o.params())
	}
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	info := e.surrogateInfoFor(s, w.Len(), o.HyperTune)
	e.swapSnapshot(func(*snapshot) *snapshot {
		return &snapshot{surr: s, info: info}
	})
	return nil
}

// surrogateInfoFor assembles the provenance record for a freshly
// trained (or legacy-loaded) surrogate from the engine's spec and the
// model's effective hyper-parameters.
func (e *Engine) surrogateInfoFor(s *core.Surrogate, queries int, hyperTuned bool) SurrogateInfo {
	p := s.Model().Params()
	domain := e.view().domain
	info := SurrogateInfo{
		Statistic:      e.spec.Stat.String(),
		FilterColumns:  e.filterNames(),
		DomainMin:      append([]float64(nil), domain.Min...),
		DomainMax:      append([]float64(nil), domain.Max...),
		TrainedQueries: queries,
		Trees:          s.Model().NumTrees(),
		MaxDepth:       p.MaxDepth,
		LearningRate:   p.LearningRate,
		Lambda:         p.Lambda,
		HyperTuned:     hyperTuned,
	}
	if e.spec.Stat.NeedsTarget() {
		info.TargetColumn = e.names[e.spec.TargetCol]
	}
	return info
}

// filterNames returns the engine's filter columns by name, in region-
// dimension order.
func (e *Engine) filterNames() []string {
	out := make([]string, len(e.spec.FilterCols))
	for j, c := range e.spec.FilterCols {
		out[j] = e.names[c]
	}
	return out
}

// HasSurrogate reports whether a surrogate has been trained or loaded.
func (e *Engine) HasSurrogate() bool { return e.surrogate.Load().surr != nil }

// SurrogateInfo describes a surrogate snapshot: the spec it was
// trained for (statistic, filter columns, target), the domain it was
// trained over, and the training it received. It rides along in the
// engine-level artifact written by SaveSurrogate, so a model loaded
// elsewhere still knows what it approximates.
type SurrogateInfo struct {
	// Statistic is the statistic name as ParseStatistic accepts it
	// (the registered name for custom statistics).
	Statistic string
	// FilterColumns are the filter column names in region-dimension
	// order; TargetColumn is empty when the statistic needs none.
	FilterColumns []string
	TargetColumn  string
	// DomainMin and DomainMax bound the region domain the surrogate
	// was trained over (the workload's sampling space).
	DomainMin, DomainMax []float64
	// TrainedQueries is the size of the training workload (0 when
	// unknown, e.g. a legacy artifact).
	TrainedQueries int
	// Trees, MaxDepth, LearningRate and Lambda are the ensemble's
	// effective hyper-parameters; HyperTuned reports whether they came
	// out of the paper's GridSearchCV.
	Trees        int
	MaxDepth     int
	LearningRate float64
	Lambda       float64
	HyperTuned   bool
	// Kernel names the inference backend serving this snapshot
	// ("scalar", "binned"). It is a property of the serving engine,
	// not of the trained weights: artifacts restore with the loading
	// engine's backend, and a backend that cannot represent the
	// ensemble reports the scalar fallback actually serving it.
	Kernel string
	// DataVersion is the version of the dataset this snapshot serves
	// over (1 = the dataset the engine opened with; each SetDataset
	// swap increments it). Like Kernel it is a serving-side property,
	// not part of the trained weights: artifacts restore with the
	// loading engine's current data version.
	DataVersion uint64
}

// CacheStats reports the result cache's lifetime hit/miss counters
// and current occupancy. A disabled cache (WithResultCache(0), or a
// WithBackend engine that never opted in) reports zeros. Safe to call
// concurrently with queries; the serving layer exports these through
// GET /metrics.
func (e *Engine) CacheStats() CacheStats {
	return e.cache.stats()
}

// SurrogateInfo returns the provenance of the engine's current
// surrogate snapshot; ok is false when none is trained or loaded.
func (e *Engine) SurrogateInfo() (info SurrogateInfo, ok bool) {
	sn := e.surrogate.Load()
	if sn.surr == nil {
		return SurrogateInfo{}, false
	}
	return sn.info, true
}

// PredictStatistic returns the surrogate's estimate for a region
// without touching the data.
func (e *Engine) PredictStatistic(center, halfSides []float64) (float64, error) {
	s := e.surrogate.Load().surrogate()
	if s == nil {
		return 0, ErrNoSurrogate
	}
	return s.Predict(center, halfSides), nil
}

// PredictStatisticBatch writes the surrogate's estimate for each
// region row into out. Each row is the flat [center..., halfSides...]
// encoding of one region (length 2·Dims; see EncodeRegion conventions
// in Find results), and out must have exactly len(rows) entries. The
// call performs no allocation beyond validation, making it the
// preferred form for high-throughput probing; every row is evaluated
// against one compiled-model snapshot even if a retrain swaps the
// surrogate mid-call.
func (e *Engine) PredictStatisticBatch(rows [][]float64, out []float64) error {
	s := e.surrogate.Load().surrogate()
	if s == nil {
		return ErrNoSurrogate
	}
	return predictBatch(s, e.Dims(), rows, out)
}

// predictBatch validates a batch-prediction request against one
// surrogate snapshot and runs it. The engine-level checks map shape
// errors to the public sentinels (ErrBadQuery for the output length,
// ErrDimMismatch for row widths); the surrogate's own validating
// boundary backstops them, so no request shape can ever reach the
// kernel's internal panics.
func predictBatch(s *core.Surrogate, dims int, rows [][]float64, out []float64) error {
	if len(out) != len(rows) {
		return fmt.Errorf("%w: output of length %d for %d rows", ErrBadQuery, len(out), len(rows))
	}
	for i, r := range rows {
		if len(r) != 2*dims {
			return fmt.Errorf("%w: row %d of length %d for engine of dimension %d (want 2·d)",
				ErrDimMismatch, i, len(r), dims)
		}
	}
	if err := s.PredictBatch(rows, out); err != nil {
		return fmt.Errorf("%w: %v", ErrDimMismatch, err)
	}
	return nil
}

// Session pins a consistent view of the engine's surrogate. All calls
// through one session use the surrogate snapshot taken when the
// session was created, even if TrainSurrogate or LoadSurrogate swap
// the engine's model in the meantime — use it when a sequence of
// queries (or a query plus PredictStatistic calls) must agree on one
// model. Sessions are cheap and safe for concurrent use; create one
// per request.
type Session struct {
	eng  *Engine
	snap *snapshot
}

// Session snapshots the engine's current state: the surrogate (which
// may be absent when none is trained yet) together with the data view
// it serves over.
func (e *Engine) Session() *Session {
	return &Session{eng: e, snap: e.surrogate.Load()}
}

// HasSurrogate reports whether the session's snapshot holds a model.
func (s *Session) HasSurrogate() bool { return s.snap.surr != nil }

// SurrogateInfo returns the provenance of the session's pinned
// snapshot; ok is false when the session was created with no
// surrogate.
func (s *Session) SurrogateInfo() (info SurrogateInfo, ok bool) {
	if s.snap.surr == nil {
		return SurrogateInfo{}, false
	}
	return s.snap.info, true
}

// PredictStatistic returns the snapshot surrogate's estimate for a
// region.
func (s *Session) PredictStatistic(center, halfSides []float64) (float64, error) {
	if s.snap.surr == nil {
		return 0, ErrNoSurrogate
	}
	return s.snap.surr.Predict(center, halfSides), nil
}

// PredictStatisticBatch is Engine.PredictStatisticBatch against the
// session's pinned surrogate snapshot.
func (s *Session) PredictStatisticBatch(rows [][]float64, out []float64) error {
	if s.snap.surr == nil {
		return ErrNoSurrogate
	}
	return predictBatch(s.snap.surr, s.eng.Dims(), rows, out)
}

// Find mines interesting regions using the session's surrogate
// snapshot.
func (s *Session) Find(q Query) (*Result, error) {
	return s.FindContext(context.Background(), q)
}

// FindContext is Find with cancellation (see Engine.FindContext).
func (s *Session) FindContext(ctx context.Context, q Query) (*Result, error) {
	return findContext(ctx, s.eng, s.snap, q)
}

// FindTopK mines the k most extreme regions using the session's
// surrogate snapshot.
func (s *Session) FindTopK(q TopKQuery) (*Result, error) {
	return s.FindTopKContext(context.Background(), q)
}

// FindTopKContext is FindTopK with cancellation (see
// Engine.FindTopKContext).
func (s *Session) FindTopKContext(ctx context.Context, q TopKQuery) (*Result, error) {
	return findTopKContext(ctx, s.eng, s.snap, q)
}
