// Activity regions: the paper's Human Activity use case (Section
// V-C). Given tri-axial accelerometer samples labelled with an
// activity, find regions of sensor space where the ratio of a chosen
// activity ("standing") exceeds 30% — even though such regions are
// highly unlikely under random exploration (the paper measures
// P(ratio > 0.3) ≈ 0.0035 over random regions).
//
// Run with: go run ./examples/activityregions
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"os/signal"
	"syscall"

	surf "surf"
)

// activity signatures: class-conditional Gaussian means and spreads in
// normalized accelerometer space.
var activities = []struct {
	name    string
	mean    [3]float64
	sigma   float64
	weight  float64
	isStand bool
}{
	{"walking", [3]float64{0.45, 0.55, 0.50}, 0.12, 0.23, false},
	{"walking_up", [3]float64{0.55, 0.60, 0.55}, 0.12, 0.18, false},
	{"walking_down", [3]float64{0.50, 0.45, 0.40}, 0.12, 0.18, false},
	{"sitting", [3]float64{0.25, 0.30, 0.70}, 0.05, 0.17, false},
	{"standing", [3]float64{0.80, 0.20, 0.30}, 0.035, 0.08, true},
	{"laying", [3]float64{0.20, 0.75, 0.20}, 0.05, 0.16, false},
}

func main() {
	// Ctrl-C cancels the pipeline mid-swarm-iteration; unregistering
	// on the first signal lets a second Ctrl-C kill the process even
	// during an uncancellable phase (e.g. a boosted-tree fit).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	// --- Simulate the tracker data.
	rng := rand.New(rand.NewPCG(21, 21))
	const n = 25000
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	stand := make([]float64, n)
	for i := 0; i < n; i++ {
		a := pick(rng)
		ax[i] = clamp01(a.mean[0] + rng.NormFloat64()*a.sigma)
		ay[i] = clamp01(a.mean[1] + rng.NormFloat64()*a.sigma)
		az[i] = clamp01(a.mean[2] + rng.NormFloat64()*a.sigma)
		if a.isStand {
			stand[i] = 1
		}
	}
	ds, err := surf.NewDataset([]string{"ax", "ay", "az", "stand"}, [][]float64{ax, ay, az, stand})
	if err != nil {
		log.Fatal(err)
	}

	// --- Ratio of standing samples per region of (ax, ay, az).
	eng, err := surf.Open(ds, surf.Config{
		FilterColumns: []string{"ax", "ay", "az"},
		Statistic:     surf.Ratio,
		TargetColumn:  "stand",
	})
	if err != nil {
		log.Fatal(err)
	}

	wl, err := eng.GenerateWorkloadContext(ctx, 4000, 23)
	if err != nil {
		log.Fatal(err)
	}
	const yR = 0.3
	exceed := 0
	for _, y := range wl.Labels() {
		if y > yR {
			exceed++
		}
	}
	fmt.Printf("P(ratio > %.1f) over %d random regions = %.4f — a highly unlikely event\n",
		yR, wl.Len(), float64(exceed)/float64(wl.Len()))

	if err := eng.TrainSurrogateContext(ctx, wl); err != nil {
		log.Fatal(err)
	}

	// Ratio does not shrink with region size, so mine cluster extents
	// with mild size pressure.
	res, err := eng.FindContext(ctx, surf.Query{
		Threshold:      yR,
		Above:          true,
		C:              1,
		MinSideFrac:    0.05,
		MaxSideFrac:    0.2,
		ClusterExtents: true,
		MaxRegions:     5,
		Seed:           29,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d candidate standing regions (%.0f%% verified, %.2fs)\n",
		len(res.Regions), res.ComplianceRate*100, res.ElapsedSeconds)
	for i, r := range res.Regions {
		fmt.Printf("  region %d: ax[%.2f,%.2f] ay[%.2f,%.2f] az[%.2f,%.2f]  standing ratio=%.2f\n",
			i, r.Min[0], r.Max[0], r.Min[1], r.Max[1], r.Min[2], r.Max[2], r.TrueValue)
	}
	fmt.Printf("generating signature was standing ~ N((%.2f, %.2f, %.2f), %.3f)\n",
		activities[4].mean[0], activities[4].mean[1], activities[4].mean[2], activities[4].sigma)
}

func pick(rng *rand.Rand) *struct {
	name    string
	mean    [3]float64
	sigma   float64
	weight  float64
	isStand bool
} {
	u := rng.Float64()
	var cum float64
	for i := range activities {
		cum += activities[i].weight
		if u < cum {
			return &activities[i]
		}
	}
	return &activities[len(activities)-1]
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
