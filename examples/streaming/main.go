// Streaming: progressive region delivery, a custom statistic, and
// multi-query execution against one pinned surrogate snapshot.
//
//  1. Build a dataset whose v column has high spread inside one box.
//  2. Register a custom "spread" statistic (max−min of v) and open an
//     engine with it — no target column needed, the statistic sees
//     whole rows.
//  3. Train the surrogate, then Stream a query: incumbent regions
//     print the moment their swarm cluster stabilizes, and EventDone
//     carries the same Result the blocking Find would return.
//  4. Run a small batch of queries through FindMany, results arriving
//     in completion order.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"os"
	"os/signal"
	"syscall"

	surf "surf"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// 1. 8,000 points; v is wildly spread inside [0.6,0.8]×[0.2,0.4]
	// and nearly constant elsewhere.
	rng := rand.New(rand.NewPCG(7, 2))
	const n = 8000
	xs := make([]float64, n)
	ys := make([]float64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
		if xs[i] > 0.6 && xs[i] < 0.8 && ys[i] > 0.2 && ys[i] < 0.4 {
			vs[i] = rng.Float64() * 100
		} else {
			vs[i] = 50 + rng.Float64()
		}
	}
	ds, err := surf.NewDataset([]string{"x", "y", "v"}, [][]float64{xs, ys, vs})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A custom statistic: the spread of v inside the region.
	spread, err := surf.CustomStatistic("spread", func(rows [][]float64) float64 {
		if len(rows) == 0 {
			return math.NaN()
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range rows {
			lo, hi = math.Min(lo, r[2]), math.Max(hi, r[2])
		}
		return hi - lo
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := surf.Open(ds, surf.Config{
		FilterColumns: []string{"x", "y"},
		Statistic:     spread,
		UseGridIndex:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train, then stream a threshold query.
	wl, err := eng.GenerateWorkloadContext(ctx, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.TrainSurrogateContext(ctx, wl); err != nil {
		log.Fatal(err)
	}
	st, err := eng.Stream(ctx, surf.Query{
		Threshold: 80, Above: true, Seed: 3, MinSideFrac: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	for ev, err := range st.Events() {
		if err != nil {
			log.Fatal(err)
		}
		switch ev := ev.(type) {
		case surf.EventRegion:
			fmt.Printf("incumbent (iter %3d): x∈[%.2f,%.2f] y∈[%.2f,%.2f] spread≈%.1f\n",
				ev.Iteration, ev.Region.Min[0], ev.Region.Max[0],
				ev.Region.Min[1], ev.Region.Max[1], ev.Region.Estimate)
		case surf.EventDone:
			fmt.Printf("converged: %d regions, %.0f%% verified compliant\n",
				len(ev.Result.Regions), ev.Result.ComplianceRate*100)
		}
	}

	// 4. A batch of thresholds over one pinned surrogate snapshot.
	queries := make([]surf.Query, 4)
	for i := range queries {
		queries[i] = surf.Query{
			Threshold: 60 + 10*float64(i), Above: true,
			Seed: uint64(i + 1), MinSideFrac: 0.05, SkipVerify: true,
		}
	}
	for r := range eng.FindMany(ctx, queries) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("query %d (threshold %.0f): %d regions\n",
			r.Index, queries[r.Index].Threshold, len(r.Result.Regions))
	}
}
