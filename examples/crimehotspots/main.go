// Crime hotspots: the paper's Section V-C use case. Given spatial
// crime incidents, find regions whose incident count exceeds the third
// quartile of random region evaluations (yR = Q3) — "areas worth
// looking into" — without scanning the data at query time.
//
// The incident data is simulated as Gaussian hotspots over a uniform
// background (the real Chicago Crimes extract is not redistributable;
// the simulator has the same multimodal structure).
//
// Run with: go run ./examples/crimehotspots
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"os"
	"os/signal"
	"sort"
	"syscall"

	surf "surf"
)

func main() {
	// Ctrl-C cancels the pipeline mid-swarm-iteration; unregistering
	// on the first signal lets a second Ctrl-C kill the process even
	// during an uncancellable phase (e.g. a boosted-tree fit).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	// --- Simulate a city's incident map: 5 hotspots + background.
	rng := rand.New(rand.NewPCG(7, 7))
	hotspots := [][2]float64{{0.2, 0.25}, {0.5, 0.7}, {0.75, 0.35}, {0.3, 0.8}, {0.85, 0.8}}
	const n = 40000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.6 {
			h := hotspots[rng.IntN(len(hotspots))]
			xs[i] = clamp01(h[0] + rng.NormFloat64()*0.04)
			ys[i] = clamp01(h[1] + rng.NormFloat64()*0.04)
		} else {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
	}
	ds, err := surf.NewDataset([]string{"x", "y"}, [][]float64{xs, ys})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := surf.Open(ds, surf.Config{
		FilterColumns: []string{"x", "y"},
		Statistic:     surf.Count,
		UseGridIndex:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Past evaluations: train the surrogate and derive yR = Q3.
	wl, err := eng.GenerateWorkloadContext(ctx, 4000, 11)
	if err != nil {
		log.Fatal(err)
	}
	labels := wl.Labels()
	sort.Float64s(labels)
	yR := labels[len(labels)*3/4]
	fmt.Printf("threshold yR = Q3 of %d random region evaluations = %.0f incidents\n", wl.Len(), yR)

	if err := eng.TrainSurrogateContext(ctx, wl); err != nil {
		log.Fatal(err)
	}

	// --- Mine hotspot regions and verify them against the data. The
	// session pins the just-trained surrogate snapshot, so the query
	// is unaffected by any concurrent retraining on the engine.
	sess := eng.Session()
	res, err := sess.FindContext(ctx, surf.Query{
		Threshold:      yR,
		Above:          true,
		MinSideFrac:    0.03,
		MaxRegions:     8,
		ClusterExtents: true,
		Seed:           13,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d candidate hotspot regions (%.0f%% verified, %.2fs)\n",
		len(res.Regions), res.ComplianceRate*100, res.ElapsedSeconds)
	for i, r := range res.Regions {
		cx, cy := (r.Min[0]+r.Max[0])/2, (r.Min[1]+r.Max[1])/2
		nearest, dist := nearestHotspot(hotspots, cx, cy)
		fmt.Printf("  region %d: x in [%.2f, %.2f], y in [%.2f, %.2f]  true count=%.0f  nearest hotspot #%d (dist %.3f)\n",
			i, r.Min[0], r.Max[0], r.Min[1], r.Max[1], r.TrueValue, nearest, dist)
	}
}

func nearestHotspot(hotspots [][2]float64, x, y float64) (idx int, best float64) {
	best = 2
	for i, h := range hotspots {
		d := math.Hypot(h[0]-x, h[1]-y)
		if d < best {
			best = d
			idx = i
		}
	}
	return idx, best
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
