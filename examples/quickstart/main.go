// Quickstart: the minimal SuRF workflow on a small spatial dataset.
//
//  1. Build a dataset (two spatial columns with one dense cluster).
//  2. Open an engine for the COUNT statistic over (x, y).
//  3. Generate a past-query workload and train the surrogate.
//  4. Ask for regions containing more than 400 points.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"os/signal"
	"syscall"

	surf "surf"
)

func main() {
	// Ctrl-C cancels the pipeline mid-swarm-iteration; unregistering
	// on the first signal lets a second Ctrl-C kill the process even
	// during an uncancellable phase (e.g. a boosted-tree fit).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	// 1. A dataset: 9,000 points, one third clustered near (0.7, 0.3).
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 9000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			xs[i] = clamp01(0.7 + rng.NormFloat64()*0.05)
			ys[i] = clamp01(0.3 + rng.NormFloat64()*0.05)
		} else {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
	}
	ds, err := surf.NewDataset([]string{"x", "y"}, [][]float64{xs, ys})
	if err != nil {
		log.Fatal(err)
	}

	// 2. An engine computing COUNT over (x, y) regions.
	eng, err := surf.Open(ds, surf.Config{
		FilterColumns: []string{"x", "y"},
		Statistic:     surf.Count,
		UseGridIndex:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the surrogate on 2,500 past region evaluations.
	wl, err := eng.GenerateWorkloadContext(ctx, 2500, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.TrainSurrogateContext(ctx, wl); err != nil {
		log.Fatal(err)
	}

	// 4. Mine regions with more than 400 points. MinSideFrac keeps
	// the size regularizer from proposing boxes too small to hold
	// that many points.
	res, err := eng.FindContext(ctx, surf.Query{
		Threshold:   400,
		Above:       true,
		MinSideFrac: 0.05,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d regions in %.2fs (%.0f%% verified against the data)\n",
		len(res.Regions), res.ElapsedSeconds, res.ComplianceRate*100)
	for i, r := range res.Regions {
		fmt.Printf("  region %d: x in [%.3f, %.3f], y in [%.3f, %.3f]  estimate=%.0f true=%.0f\n",
			i, r.Min[0], r.Max[0], r.Min[1], r.Max[1], r.Estimate, r.TrueValue)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
