// Serve: the HTTP query API end to end — a server with a trained
// surrogate and a plain HTTP client talking to it.
//
//  1. Build a clustered dataset, open an engine, train a surrogate
//     and start the HTTP server in-process on a loopback port (in a
//     real deployment this half lives in surf-serve; everything the
//     client half does works unchanged against it).
//  2. GET /healthz — liveness plus what the resident surrogate
//     computes.
//  3. POST /v1/find — a threshold query as JSON, a ranked Result
//     back.
//  4. GET /v1/stream — the same query as Server-Sent Events: swarm
//     telemetry while it runs, incumbent regions as they stabilize,
//     and the final result, decoded with surf.UnmarshalEvent.
//
// Run with: go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strings"

	surf "surf"
	"surf/server"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// 1. Server half: dataset, engine, surrogate, HTTP listener.
	rng := rand.New(rand.NewPCG(11, 4))
	const n = 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 { // one dense cluster at (0.7, 0.3)
			xs[i] = 0.7 + rng.NormFloat64()*0.04
			ys[i] = 0.3 + rng.NormFloat64()*0.04
		} else {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
	}
	ds, err := surf.NewDataset([]string{"x", "y"}, [][]float64{xs, ys})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := surf.Open(ds, surf.Config{
		FilterColumns: []string{"x", "y"},
		Statistic:     surf.Count,
		UseGridIndex:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	wl, err := eng.GenerateWorkloadContext(ctx, 3000, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.TrainSurrogateContext(ctx, wl, surf.TrainOptions{}); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- server.New(eng).Serve(ctx, l) }()
	base := "http://" + l.Addr().String()
	fmt.Println("server listening on", base)

	// 2. Liveness and surrogate status.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var health struct {
		Status    string   `json:"status"`
		Surrogate bool     `json:"surrogate"`
		Statistic string   `json:"statistic"`
		Filters   []string `json:"filter_columns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("healthz: %s, surrogate=%v (%s over %v)\n\n",
		health.Status, health.Surrogate, health.Statistic, health.Filters)

	// 3. One blocking query over HTTP. MinSideFrac keeps the size
	// regularizer from shrinking regions below the scale the
	// surrogate was trained on.
	query := surf.Query{Threshold: 250, Above: true, MaxRegions: 3, Seed: 7, MinSideFrac: 0.05}
	body, _ := json.Marshal(query)
	resp, err = http.Post(base+"/v1/find", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("find: HTTP %d", resp.StatusCode)
	}
	var res surf.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /v1/find: %d regions, %.0f%% verified, %.2fs\n",
		len(res.Regions), res.ComplianceRate*100, res.ElapsedSeconds)
	for i, r := range res.Regions {
		fmt.Printf("  region %d: x in [%.3f, %.3f], y in [%.3f, %.3f], estimate %.0f\n",
			i, r.Min[0], r.Max[0], r.Min[1], r.Max[1], r.Estimate)
	}

	// 4. The same query as a progressive SSE stream.
	fmt.Println("\nGET /v1/stream:")
	stream, err := http.Get(base + "/v1/stream?q=" + url.QueryEscape(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		ev, err := surf.UnmarshalEvent([]byte(strings.TrimPrefix(line, "data: ")))
		if err != nil {
			log.Fatal(err)
		}
		switch ev := ev.(type) {
		case surf.EventIteration:
			if (ev.Iteration+1)%25 == 0 {
				fmt.Printf("  iter %d: E[J]=%.4g, %.0f%% particles valid\n",
					ev.Iteration, ev.MeanFitness, ev.ValidParticleFraction*100)
			}
		case surf.EventRegion:
			fmt.Printf("  incumbent at iter %d: estimate %.0f\n", ev.Iteration, ev.Region.Estimate)
		case surf.EventDone:
			fmt.Printf("  done: %d regions\n", len(ev.Result.Regions))
		}
	}

	// Graceful shutdown: cancel the serve context and wait.
	cancel()
	if err := <-served; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver shut down cleanly")
}
