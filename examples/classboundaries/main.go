// Class boundaries: the paper's high-dimensional motivating use case
// (Section I-A). In an ML classification setting, find feature-space
// regions with a high ratio of one class — interpretable
// hyper-rectangles that suggest classification boundaries, without
// dimensionality reduction.
//
// We build a two-class problem in 4-dimensional feature space: class 1
// concentrates in two disjoint pockets; class 0 fills the rest. SuRF
// mines boxes where the class-1 ratio exceeds 80%, which a downstream
// user could read directly as rules ("f1 in [a,b] AND f2 in [c,d] →
// class 1").
//
// Run with: go run ./examples/classboundaries
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"os/signal"
	"syscall"

	surf "surf"
)

func main() {
	// Ctrl-C cancels the pipeline mid-swarm-iteration; unregistering
	// on the first signal lets a second Ctrl-C kill the process even
	// during an uncancellable phase (e.g. a boosted-tree fit).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() { <-ctx.Done(); stop() }()

	rng := rand.New(rand.NewPCG(31, 31))
	const n = 20000
	const dims = 4
	pockets := [][2][4]float64{
		// {center, half-side} of the class-1 pockets.
		{{0.25, 0.25, 0.5, 0.5}, {0.12, 0.12, 0.2, 0.2}},
		{{0.75, 0.7, 0.5, 0.5}, {0.1, 0.1, 0.2, 0.2}},
	}

	cols := make([][]float64, dims+1)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	point := make([]float64, dims)
	ones := 0
	for i := 0; i < n; i++ {
		label := 0.0
		if rng.Float64() < 0.35 {
			// Class 1: sample inside a random pocket.
			p := pockets[rng.IntN(len(pockets))]
			for j := 0; j < dims; j++ {
				point[j] = clamp01(p[0][j] + (rng.Float64()*2-1)*p[1][j])
			}
			label = 1
			ones++
		} else {
			for j := 0; j < dims; j++ {
				point[j] = rng.Float64()
			}
		}
		for j := 0; j < dims; j++ {
			cols[j][i] = point[j]
		}
		cols[dims][i] = label
	}
	ds, err := surf.NewDataset([]string{"f1", "f2", "f3", "f4", "class"}, cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d points, %.0f%% class 1, concentrated in %d pockets\n",
		n, 100*float64(ones)/n, len(pockets))

	eng, err := surf.Open(ds, surf.Config{
		FilterColumns: []string{"f1", "f2", "f3", "f4"},
		Statistic:     surf.Ratio,
		TargetColumn:  "class",
	})
	if err != nil {
		log.Fatal(err)
	}

	wl, err := eng.GenerateWorkloadContext(ctx, 6000, 37)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.TrainSurrogateContext(ctx, wl, surf.TrainOptions{Trees: 200}); err != nil {
		log.Fatal(err)
	}

	res, err := eng.FindContext(ctx, surf.Query{
		Threshold:      0.8,
		Above:          true,
		C:              1,
		MinSideFrac:    0.05,
		MaxSideFrac:    0.25,
		ClusterExtents: true,
		MaxRegions:     6,
		Glowworms:      600,
		Iterations:     150,
		Seed:           41,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d candidate class-1 regions (%.0f%% verified, %.2fs)\n",
		len(res.Regions), res.ComplianceRate*100, res.ElapsedSeconds)
	names := []string{"f1", "f2", "f3", "f4"}
	for i, r := range res.Regions {
		fmt.Printf("  rule %d (class-1 ratio %.2f): IF", i, r.TrueValue)
		for j, name := range names {
			if j > 0 {
				fmt.Print(" AND")
			}
			fmt.Printf(" %s in [%.2f, %.2f]", name, r.Min[j], r.Max[j])
		}
		fmt.Println(" THEN class=1")
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
