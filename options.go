package surf

import (
	"fmt"

	"surf/internal/gbt"
	"surf/internal/gbt/kernel"
	"surf/internal/stats"
)

// Statistic enumerates the supported region statistics.
type Statistic int

// Supported statistics. Count is the paper's "density" statistic; Mean
// over a target column is its "aggregate" statistic.
const (
	Count Statistic = iota
	Sum
	Mean
	Min
	Max
	Median
	Variance
	StdDev
	Ratio
)

var statKinds = [...]stats.Kind{
	Count: stats.Count, Sum: stats.Sum, Mean: stats.Mean, Min: stats.Min,
	Max: stats.Max, Median: stats.Median, Variance: stats.Variance,
	StdDev: stats.StdDev, Ratio: stats.Ratio,
}

// kind resolves a Statistic to its internal stats.Kind, accepting
// both the built-in enum and values returned by CustomStatistic.
func (s Statistic) kind() (stats.Kind, bool) {
	if s >= 0 && int(s) < len(statKinds) {
		return statKinds[s], true
	}
	if k := stats.Kind(s); k.IsCustom() {
		return k, true
	}
	return 0, false
}

// String names the statistic (the registered name for custom
// statistics).
func (s Statistic) String() string {
	if k, ok := s.kind(); ok {
		return k.String()
	}
	return fmt.Sprintf("Statistic(%d)", int(s))
}

// ParseStatistic converts a name like "count" or "mean" — or the name
// of a statistic registered with CustomStatistic — to a Statistic.
func ParseStatistic(name string) (Statistic, error) {
	k, err := stats.ParseKind(name)
	if err != nil {
		return 0, err
	}
	for s, kk := range statKinds {
		if kk == k {
			return Statistic(s), nil
		}
	}
	if k.IsCustom() {
		return Statistic(k), nil
	}
	return 0, fmt.Errorf("surf: unmapped statistic %q", name)
}

// CustomStatistic registers a named statistic computed by fn over the
// data rows inside a region and returns a Statistic that composes
// with the built-in enum everywhere: Config.Statistic, workload
// generation, surrogate training, Find/Stream/FindMany, and
// ParseStatistic/String round-trips. Each row passed to fn carries
// the dataset's columns in Names() order; rows arrive in no
// guaranteed order and may be empty — return NaN to mark the
// statistic undefined on a region (workload generation then resamples
// it, exactly as for the built-in undefined-on-empty statistics).
// Custom statistics need no TargetColumn: fn sees whole rows.
//
// The registration is process-wide (a name can be registered once and
// parses from any engine) and fn must be safe for concurrent calls.
// Registering an empty name, a nil function, or a name already taken
// by a built-in or earlier registration returns ErrBadConfig.
func CustomStatistic(name string, fn func(rows [][]float64) float64) (Statistic, error) {
	k, err := stats.Register(name, fn)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return Statistic(k), nil
}

// Option customizes an engine at Open time.
type Option func(*engineOptions)

type engineOptions struct {
	backend              Backend
	observer             func(Event)
	domainSet            bool
	domainMin, domainMax []float64
	cacheSet             bool
	cacheSize            int
	kernelName           string
}

// WithBackend replaces the engine's true-function evaluator with a
// caller-supplied Backend. Workload generation, region verification
// and UseTrueFunction queries then go through the backend instead of
// scanning the engine's dataset; the dataset still provides the
// column layout and (unless WithDomain is also given) the region
// domain.
func WithBackend(b Backend) Option {
	return func(o *engineOptions) { o.backend = b }
}

// WithInferenceKernel selects the inference backend compiling and
// serving the engine's surrogate predictions — one of
// InferenceKernels(): "scalar" (the portable float64 traversal) or
// "binned" (the pre-binned uint16 fast path). Every backend predicts
// bit-for-bit identically; only the cost per row changes, so the
// choice never affects mined regions. Without this option the
// SURF_KERNEL environment variable decides, then the built-in default
// (binned). Open fails with ErrBadConfig for an unknown name. The
// backend serving each surrogate snapshot is reported in
// SurrogateInfo.Kernel; a backend that cannot represent a particular
// ensemble falls back to scalar, and the snapshot reports that.
func WithInferenceKernel(name string) Option {
	return func(o *engineOptions) { o.kernelName = name }
}

// InferenceKernels lists the registered inference backends, sorted by
// name — the values WithInferenceKernel accepts.
func InferenceKernels() []string { return kernel.Names() }

// WithDomain overrides the region-space bounding box derived from the
// dataset. min and max must have one entry per filter column. Useful
// when a Backend covers a wider space than the sample loaded into the
// dataset.
func WithDomain(min, max []float64) Option {
	return func(o *engineOptions) {
		o.domainSet = true
		o.domainMin = append([]float64(nil), min...)
		o.domainMax = append([]float64(nil), max...)
	}
}

// WithResultCache sizes the engine's query-result cache (default 64
// entries; 0 or negative disables it). Find and FindTopK consult the
// cache: a repeat of a recently answered query — after canonicalizing
// "zero means default" knobs — against the same surrogate snapshot
// returns the cached Result (as a private copy) without re-running
// the swarm. Entries are keyed by snapshot generation and the cache
// is cleared whenever TrainSurrogate or LoadSurrogate swaps the
// model, so a stale model's results are never served. Streams,
// FindMany and engines with a WithObserver callback bypass the
// cache, since their callers consume the per-query event feed.
//
// Caching assumes repeated queries are deterministic, which holds
// for every built-in code path over the engine's immutable dataset.
// Engines opened with WithBackend therefore default to no cache —
// the backend may front live data, and cached results replay
// evaluator-derived values (TrueValue, ComplianceRate,
// UseTrueFunction estimates) — and must opt in with an explicit
// WithResultCache if their backend's data is immutable. Likewise
// disable it if a custom statistic's function is not a pure function
// of its rows.
func WithResultCache(entries int) Option {
	return func(o *engineOptions) {
		o.cacheSet = true
		o.cacheSize = entries
	}
}

// WithObserver attaches a telemetry callback invoked with every
// Event of every query the engine executes — Find, FindTopK, Stream,
// StreamTopK and FindMany alike — without consuming the query's
// stream. The callback runs synchronously on the mining goroutine
// before the event is offered to the stream's consumer, so it must be
// fast and must not call back into the engine; with concurrent
// queries it is called concurrently and must be safe for concurrent
// use.
func WithObserver(fn func(Event)) Option {
	return func(o *engineOptions) { o.observer = fn }
}

// TrainOptions tune surrogate training.
type TrainOptions struct {
	// Trees, LearningRate, MaxDepth, Lambda override the boosted-tree
	// hyper-parameters (zero keeps the default: 100 trees, 0.1 rate,
	// depth 6, λ=1).
	Trees        int
	LearningRate float64
	MaxDepth     int
	Lambda       float64
	// HyperTune runs the paper's 144-combination grid search with
	// K-fold CV before the final fit. Slower but more accurate.
	HyperTune bool
	// CVFolds is the fold count for HyperTune (default 3).
	CVFolds int
	// Seed drives subsampling and CV shuffling.
	Seed uint64
	// Workers bounds the goroutines training may use (0 means one per
	// available CPU). Purely an execution knob: the trained model is
	// bit-identical for every value.
	Workers int
}

func (o TrainOptions) params() gbt.Params {
	p := gbt.DefaultParams()
	if o.Trees > 0 {
		p.NumTrees = o.Trees
	}
	if o.LearningRate > 0 {
		p.LearningRate = o.LearningRate
	}
	if o.MaxDepth > 0 {
		p.MaxDepth = o.MaxDepth
	}
	if o.Lambda > 0 {
		p.Lambda = o.Lambda
	}
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	if o.Workers > 0 {
		p.Workers = o.Workers
	}
	return p
}
