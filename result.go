package surf

// Region is one mined region.
//
// Regions have a stable snake_case JSON form ("min", "max",
// "estimate", "score", "worms", "true_value", "verified",
// "satisfies") used by the HTTP serving layer; non-finite values
// encode as the strings "NaN", "+Inf" and "-Inf". See json.go.
type Region struct {
	// Min and Max bound the hyper-rectangle per filter dimension.
	Min, Max []float64
	// Estimate is the statistic value the optimizer's model assigned.
	Estimate float64
	// Score is the objective value (higher = better under the size
	// regularizer).
	Score float64
	// Worms is how many swarm particles converged to this region.
	Worms int
	// TrueValue and Satisfies are set when the region was verified
	// against the dataset.
	TrueValue float64
	Verified  bool
	Satisfies bool
}

// Result is a mining outcome.
//
// Results have a stable snake_case JSON form ("regions",
// "valid_particle_fraction", "compliance_rate", "elapsed_seconds");
// a skipped verification's NaN compliance rate encodes as the string
// "NaN".
type Result struct {
	// Regions are the mined regions, best objective first.
	Regions []Region
	// ValidParticleFraction is the share of swarm particles ending on
	// constraint-satisfying positions.
	ValidParticleFraction float64
	// ComplianceRate is the fraction of regions that verified against
	// the true statistic (NaN when verification was skipped).
	ComplianceRate float64
	// ElapsedSeconds is the mining wall-clock time.
	ElapsedSeconds float64
}
