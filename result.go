package surf

// Region is one mined region.
type Region struct {
	// Min and Max bound the hyper-rectangle per filter dimension.
	Min, Max []float64
	// Estimate is the statistic value the optimizer's model assigned.
	Estimate float64
	// Score is the objective value (higher = better under the size
	// regularizer).
	Score float64
	// Worms is how many swarm particles converged to this region.
	Worms int
	// TrueValue and Satisfies are set when the region was verified
	// against the dataset.
	TrueValue float64
	Verified  bool
	Satisfies bool
}

// Result is a mining outcome.
type Result struct {
	// Regions are the mined regions, best objective first.
	Regions []Region
	// ValidParticleFraction is the share of swarm particles ending on
	// constraint-satisfying positions.
	ValidParticleFraction float64
	// ComplianceRate is the fraction of regions that verified against
	// the true statistic (NaN when verification was skipped).
	ComplianceRate float64
	// ElapsedSeconds is the mining wall-clock time.
	ElapsedSeconds float64
}
