//go:build tools

// Package tools anchors the dev-tool versions in go.mod without
// linking them into any build. The blank imports name the exact
// command packages `make tools` installs, and keep an (online)
// `go mod tidy` from dropping the pins; the build tag keeps every
// normal build and test run from resolving them.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
