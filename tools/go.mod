// Tool-dependency manifest: the single source of truth for the
// versions of the external dev tools CI installs (see `make tools`).
// Nothing imports this module and no go.sum is checked in — builds
// never link these packages; CI and `make tools` resolve each one
// with `go install <pkg>@<version>`, reading the version from the
// require block below.
module surf/tools

go 1.23

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
