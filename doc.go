// Package surf mines "interesting" data regions: axis-aligned
// hyper-rectangles whose statistic (count, mean, ratio, …) exceeds or
// falls below an analyst-supplied threshold.
//
// It implements SuRF (SUrrogate Region Finder) from Savva,
// Anagnostopoulos & Triantafillou, "SuRF: Identification of
// Interesting Data Regions with Surrogate Models", ICDE 2020. Instead
// of scanning the dataset for every candidate region, SuRF trains a
// gradient-boosted-tree surrogate on past region evaluations and runs
// Glowworm Swarm Optimization over the region space, so query time is
// independent of the data size.
//
// # Typical use
//
//	ds, _ := surf.NewDataset([]string{"x", "y"}, cols)
//	eng, _ := surf.Open(ds, surf.Config{
//		FilterColumns: []string{"x", "y"},
//		Statistic:     surf.Count,
//	})
//	wl, _ := eng.GenerateWorkload(5000, 1)     // past evaluations
//	_ = eng.TrainSurrogate(wl)                 // fit f̂
//	res, _ := eng.Find(surf.Query{Threshold: 1000, Above: true})
//	for _, r := range res.Regions { fmt.Println(r.Min, r.Max, r.Estimate) }
//
// # The v2 serving API
//
// The package is designed to sit inside a server handling concurrent
// query traffic:
//
//   - Every long-running entry point has a context-accepting form
//     (FindContext, FindTopKContext, TrainSurrogateContext,
//     GenerateWorkloadContext). Cancellation is plumbed into the
//     optimizer and honored within one swarm iteration; the
//     context-free names are thin context.Background() wrappers.
//   - An Engine is safe for concurrent use. Queries read an atomic
//     snapshot of the surrogate, so TrainSurrogate or LoadSurrogate
//     may swap the model while Find calls are in flight.
//   - Session pins one surrogate snapshot for a sequence of calls
//     that must see a consistent model.
//   - The Backend interface plugs custom true-function evaluators
//     (remote stores, approximate engines) into workload generation,
//     verification and the f+GlowWorm baseline via WithBackend.
//   - Failures are classified by exported sentinel errors
//     (ErrNoSurrogate, ErrDimMismatch, ErrBadConfig, …) that work
//     with errors.Is.
package surf
