// Package surf mines "interesting" data regions: axis-aligned
// hyper-rectangles whose statistic (count, mean, ratio, …) exceeds or
// falls below an analyst-supplied threshold.
//
// It implements SuRF (SUrrogate Region Finder) from Savva,
// Anagnostopoulos & Triantafillou, "SuRF: Identification of
// Interesting Data Regions with Surrogate Models", ICDE 2020. Instead
// of scanning the dataset for every candidate region, SuRF trains a
// gradient-boosted-tree surrogate on past region evaluations and runs
// Glowworm Swarm Optimization over the region space, so query time is
// independent of the data size.
//
// # Typical use
//
//	ds, _ := surf.NewDataset([]string{"x", "y"}, cols)
//	eng, _ := surf.Open(ds, surf.Config{
//		FilterColumns: []string{"x", "y"},
//		Statistic:     surf.Count,
//	})
//	wl, _ := eng.GenerateWorkload(5000, 1)     // past evaluations
//	_ = eng.TrainSurrogate(wl)                 // fit f̂
//	res, _ := eng.Find(surf.Query{Threshold: 1000, Above: true})
//	for _, r := range res.Regions { fmt.Println(r.Min, r.Max, r.Estimate) }
//
// # The v2 serving API
//
// The package is designed to sit inside a server handling concurrent
// query traffic:
//
//   - Every long-running entry point has a context-accepting form
//     (FindContext, FindTopKContext, TrainSurrogateContext,
//     GenerateWorkloadContext). Cancellation is plumbed into the
//     optimizer (honored within one swarm iteration) and into
//     surrogate training (honored within one boosting round, on the
//     plain fit and inside every hyper-tuning fold alike); the
//     context-free names are thin context.Background() wrappers.
//   - An Engine is safe for concurrent use. Queries read an atomic
//     snapshot of the surrogate, so TrainSurrogate or LoadSurrogate
//     may swap the model while Find calls are in flight.
//   - Session pins one surrogate snapshot for a sequence of calls
//     that must see a consistent model.
//   - The Backend interface plugs custom true-function evaluators
//     (remote stores, approximate engines) into workload generation,
//     verification and the f+GlowWorm baseline via WithBackend.
//   - Failures are classified by exported sentinel errors
//     (ErrNoSurrogate, ErrDimMismatch, ErrBadConfig, …) that work
//     with errors.Is. Queries are validated up front, before any
//     mining starts, so ErrBadQuery surfaces immediately from Find,
//     Stream and FindMany alike.
//
// # Streaming queries
//
// Find blocks until the swarm converges; Engine.Stream delivers the
// same run progressively. The stream emits EventIteration telemetry
// every optimizer iteration, an EventRegion the moment an incumbent
// region's swarm cluster stabilizes, and a terminal EventDone whose
// Result is identical to the batch call's — Find is implemented as a
// drained Stream, so there is exactly one execution path:
//
//	st, _ := eng.Stream(ctx, surf.Query{Threshold: 1000, Above: true})
//	for ev, err := range st.Events() {
//		if err != nil {
//			break // the run failed or was cancelled
//		}
//		switch ev := ev.(type) {
//		case surf.EventRegion:
//			fmt.Println("incumbent:", ev.Region.Min, ev.Region.Max)
//		case surf.EventDone:
//			fmt.Println("final:", len(ev.Result.Regions), "regions")
//		}
//	}
//
// Breaking out of the loop (or cancelling ctx) stops the mining
// goroutine within one swarm iteration; Stream.Result then returns
// the incumbents delivered so far together with the run's error.
// WithObserver taps the same events engine-wide without consuming
// any stream, and Engine.FindMany executes a batch of queries
// against one pinned surrogate snapshot on a shared worker pool,
// yielding each result as it finishes.
//
// # Custom statistics
//
// Beyond the built-in enum, CustomStatistic registers a named
// statistic computed by an arbitrary function over the data rows
// inside a region. The result composes with everything: Config,
// workload generation, surrogate training, Find/Stream/FindMany and
// ParseStatistic round trips.
//
//	spread, _ := surf.CustomStatistic("spread", func(rows [][]float64) float64 {
//		if len(rows) == 0 {
//			return math.NaN() // undefined on empty regions
//		}
//		lo, hi := math.Inf(1), math.Inf(-1)
//		for _, r := range rows {
//			lo, hi = math.Min(lo, r[2]), math.Max(hi, r[2])
//		}
//		return hi - lo
//	})
//	eng, _ := surf.Open(ds, surf.Config{FilterColumns: []string{"x", "y"}, Statistic: spread})
//
// # Model artifacts
//
// The trained surrogate is the durable asset of a SuRF deployment
// ("train once, reuse", paper Section V-D). SaveSurrogate writes a
// versioned artifact carrying the ensemble together with the spec it
// was trained for (statistic, filter columns, target), the training
// domain and the training metadata SurrogateInfo reports.
// LoadSurrogate restores it with bit-identical predictions — the
// compiled inference snapshot is rebuilt on load — and rejects, with
// ErrBadArtifact, an artifact whose spec does not match the engine:
// different statistic, different filter columns, different target, a
// corrupt payload, or a format version from a newer build. Custom
// statistics persist by registered name and must be registered (via
// CustomStatistic) in the loading process before the artifact loads.
// Artifacts in the legacy bare-model format are still accepted.
//
//	var buf bytes.Buffer
//	_ = eng.SaveSurrogate(&buf)                 // versioned artifact
//	eng2, _ := surf.Open(ds, sameConfig)
//	_ = eng2.LoadSurrogate(&buf)                // bit-identical predictions
//	info, _ := eng2.SurrogateInfo()             // provenance survives
//
// # Training performance
//
// Surrogate training is the dominant offline cost, so the boosted-tree
// trainer runs as a parallel pipeline: histogram construction and
// best-split search fan out across features (and large nodes across
// row chunks) over TrainOptions.Workers goroutines (0 = one per CPU),
// sibling histograms are derived by subtraction instead of a second
// scan, and per-round prediction updates come from the leaf
// assignments captured during tree growth rather than re-walking
// every tree. Parallelism is an execution knob only — the trained
// model is byte-identical for every Workers value, so retraining on a
// different machine shape never changes results. A cancelled
// TrainSurrogateContext returns within one boosting round and leaves
// the engine's current surrogate snapshot untouched; incremental
// training behaves the same way, committing its extra trees
// all-or-nothing.
//
// # Inference backends
//
// Every surrogate prediction — the swarm's batch objective,
// PredictStatistic(Batch), FindMany — is served by a pluggable
// inference kernel chosen at Open time. WithInferenceKernel selects
// one of InferenceKernels(): "scalar", the portable flat-node float64
// traversal, or "binned" (the default), which quantizes split
// thresholds into per-feature cut ranks at compile time, pre-bins each
// row's values into uint16 bin indices with one branchless binary
// search per feature, and walks 8-byte integer-comparison nodes in
// L1-sized row tiles. Binning is by rank, not by rounded value, so
// every backend predicts bit-for-bit identically — the choice is
// purely an execution knob and never changes mined regions (a
// differential fuzz target holds backends to that contract). Without
// the option, the SURF_KERNEL environment variable decides, then the
// built-in default. SurrogateInfo.Kernel reports the backend actually
// serving the current snapshot: an ensemble a backend cannot represent
// (the binned encoding bounds features and distinct cuts per feature
// at 65535) falls back to scalar and reports that. Artifacts carry
// weights, not a backend — a loaded artifact is recompiled for the
// loading engine's kernel.
//
// # Serving and caching
//
// Package surf/server exposes an Engine over HTTP: POST /v1/find,
// /v1/topk and /v1/findmany, GET or POST /v1/stream (the event feed
// as Server-Sent Events, encoded with MarshalEvent), GET /healthz
// (liveness), GET /readyz (readiness) and GET /metrics (Prometheus
// text format), with the sentinel errors mapped to statuses
// (ErrBadQuery → 400, ErrNoSurrogate → 409, ErrBadArtifact → 422)
// and rendered as a uniform {"error": {"code", "message",
// "request_id"}} envelope — the full code table is in the server
// package documentation. Every request gets an ID (client-supplied
// or generated) echoed in the X-Request-Id header and response body,
// and the server can emit one structured log/slog line per request.
// Query, TopKQuery, Result, Region and the events all have stable
// snake_case JSON forms; non-finite floats encode as the strings
// "NaN", "+Inf" and "-Inf". The surf-serve command is its CLI
// front-end, and surf-loadtest drives a running server with a
// closed-loop mixed workload, gating CI on throughput and tail
// latency.
//
// Package surf/registry scales that server to many datasets: a
// concurrency-safe catalog of named, versioned engine entries that
// load lazily, evict least-recently-used under a capacity bound
// (never while serving a query) and hot-swap atomically — in-flight
// queries finish against the engine set they pinned. Entries may
// shard execution across contiguous row ranges, with per-shard Find
// results merged through the same IoU clustering that dedupes a
// single swarm. The server routes queries by a "dataset" field and
// manages entries through the PUT/DELETE /v1/models admin API.
//
// Engines also keep a small LRU result cache over canonicalized
// queries (WithResultCache to resize or disable): a repeated
// Find/FindTopK against the same surrogate snapshot is answered
// without re-running the swarm, and the cache clears on every
// train/load so no stale model's results are served.
//
// # Living data
//
// The paper's pipeline freezes the dataset at training time; Store
// lifts that restriction. NewStore wraps a seed Dataset as version 1
// of a versioned, append-capable collection: Store.Append commits a
// batch of rows and publishes an immutable Snapshot atomically, so
// readers pin a snapshot with one lock-free pointer load and are
// never blocked — or torn — by concurrent appends. Engine.SetDataset
// swaps the engine onto a new snapshot's data (keeping the trained
// surrogate, which still answers queries — it just drifts from the
// data), stamps the data version into SurrogateInfo.DataVersion and
// every result-cache key, and clears cached results exactly as a
// model swap does. Engine.ContinueTraining then extends the ensemble
// in place against the current data, all-or-nothing.
//
// Mined results over a store built from a base dataset plus appended
// batches are bit-identical to those over the equivalent flat
// dataset — a differential test and the FuzzAppendParity fuzz target
// hold the store to that contract.
//
// The registry automates the loop: entries created from a Spec with
// DriftThreshold carry a reservoir of sampled training queries, and
// Registry.Append (exposed as POST /v1/datasets/{name}/append)
// commits rows, re-points every shard at the new version, replays
// the reservoir against the true evaluator to score drift, and —
// past the threshold — kicks a cancellable background retrain that
// republishes through the same atomic hot swap, never dropping an
// in-flight query. ModelStatus, /v1/models and the
// surf_dataset_data_version / surf_dataset_drift_score /
// surf_dataset_retraining / surf_dataset_retrains_total metric
// families report the living state.
//
// # Machine-checked invariants
//
// The concurrency and determinism rules above are enforced by a
// custom analyzer suite in the lint module (lint/cmd/surf-lint, run
// by `make lint` and CI): contexts must flow into every cancellable
// call (ctxflow), atomic snapshot fields move only through their
// atomic method set (atomicsnap), code marked //surf:deterministic
// stays reproducible (detrain), server errors stay inside the JSON
// envelope (errenvelope), and metric labels stay bounded (obslabel).
// Deliberate exceptions are annotated in-tree as
// //lint:allow <analyzer>: <reason>; the README's "Correctness
// tooling" section documents each analyzer and its motivating bug.
package surf
