package registry

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	surf "surf"
)

// Sentinel errors. ErrUnknownDataset reports a name with no registered
// entry (the HTTP layer maps it to 404); ErrBadSpec reports a spec
// that can never load (400). Artifact/spec mismatches wrap
// surf.ErrBadArtifact (422).
var (
	ErrUnknownDataset = errors.New("registry: unknown dataset")
	ErrBadSpec        = errors.New("registry: bad model spec")
	// ErrBadAppend reports an append batch the entry's store rejected —
	// wrong row width, empty batch (400 at the HTTP layer).
	ErrBadAppend = errors.New("registry: bad append")
)

// Spec describes one registry entry: where the data lives, what the
// engine computes over it, where its surrogate comes from, and how
// execution is sharded. Its JSON form is the PUT /v1/models/{name}
// request body and the surf-serve config-file entry.
type Spec struct {
	// Data is the dataset CSV path.
	Data string `json:"data"`
	// FilterColumns, Statistic and TargetColumn mirror surf.Config;
	// Statistic is a name surf.ParseStatistic accepts.
	FilterColumns []string `json:"filter_columns"`
	Statistic     string   `json:"statistic"`
	TargetColumn  string   `json:"target_column,omitempty"`
	// Artifact is a surrogate artifact path (surf-train / SaveSurrogate
	// output) loaded into the engines at entry load time. Mutually
	// exclusive with Train.
	Artifact string `json:"artifact,omitempty"`
	// Train, when positive, trains a surrogate at entry load time from
	// this many generated workload queries (seeded by TrainSeed). The
	// entry reports the "training" state while it runs.
	Train     int    `json:"train,omitempty"`
	TrainSeed uint64 `json:"train_seed,omitempty"`
	// Shards splits execution across this many contiguous row-range
	// shards (0 or 1 = unsharded).
	Shards int `json:"shards,omitempty"`
	// Kernel names the inference backend serving the entry's surrogate
	// predictions — one of surf.InferenceKernels(); empty defers to the
	// SURF_KERNEL environment variable, then the built-in default.
	// Every backend predicts bit-identically, so this is purely an
	// execution knob and never changes query results.
	Kernel string `json:"kernel,omitempty"`
	// UseGridIndex builds grid indexes for true-function evaluation.
	UseGridIndex bool `json:"use_grid_index,omitempty"`
	// DriftThreshold enables drift-triggered background retraining:
	// after every append the surrogate's normalized residual is
	// re-measured over a reservoir of replayed training queries, and a
	// score above the threshold kicks an incremental retrain that
	// hot-swaps the extended model in. 0 disables auto-retrain (drift
	// is still scored when DriftReservoir > 0).
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	// DriftReservoir sizes the replay reservoir (0 = default 64 when
	// monitoring is on, -1 = disable drift monitoring entirely).
	// Monitoring is on when this is positive or DriftThreshold is set.
	DriftReservoir int `json:"drift_reservoir,omitempty"`
	// RetrainQueries and RetrainTrees shape the drift-triggered
	// retrain: a fresh workload of RetrainQueries region evaluations
	// against the latest data version feeds RetrainTrees extra boosting
	// rounds (defaults 256 and 25).
	RetrainQueries int `json:"retrain_queries,omitempty"`
	RetrainTrees   int `json:"retrain_trees,omitempty"`
}

// driftEnabled reports whether the spec asks for drift monitoring:
// explicitly via a positive reservoir, or implicitly via a retrain
// threshold (validate rejects a threshold with monitoring disabled).
func (s Spec) driftEnabled() bool {
	return s.DriftReservoir > 0 || (s.DriftThreshold > 0 && s.DriftReservoir != -1)
}

// merge fills s's zero fields from prev — the hot-swap inheritance
// rule: a Register carrying only the changed fields (typically just a
// new artifact path) keeps the rest of the running spec. Artifact and
// Train are the one mutually exclusive pair, so setting either one
// explicitly drops the other's inherited value.
func (s Spec) merge(prev Spec) Spec {
	if s.Data == "" {
		s.Data = prev.Data
	}
	if s.FilterColumns == nil {
		s.FilterColumns = prev.FilterColumns
	}
	if s.Statistic == "" {
		s.Statistic = prev.Statistic
	}
	if s.TargetColumn == "" {
		s.TargetColumn = prev.TargetColumn
	}
	if s.Shards == 0 {
		s.Shards = prev.Shards
	}
	if s.Kernel == "" {
		s.Kernel = prev.Kernel
	}
	if s.DriftThreshold == 0 {
		s.DriftThreshold = prev.DriftThreshold
	}
	if s.DriftReservoir == 0 {
		s.DriftReservoir = prev.DriftReservoir
	}
	if s.RetrainQueries == 0 {
		s.RetrainQueries = prev.RetrainQueries
	}
	if s.RetrainTrees == 0 {
		s.RetrainTrees = prev.RetrainTrees
	}
	switch {
	case s.Artifact != "" || s.Train > 0:
		// Explicit model source; inherit neither.
	default:
		s.Artifact, s.Train, s.TrainSeed = prev.Artifact, prev.Train, prev.TrainSeed
	}
	return s
}

// validate rejects specs that can never load, checking the cheap
// invariants plus the artifact's declared metadata (statistic and
// filter columns must match the spec) so a bad PUT fails at
// registration time, not at the first query.
func (s Spec) validate() error {
	switch {
	case s.Data == "":
		return fmt.Errorf("%w: no dataset path", ErrBadSpec)
	case len(s.FilterColumns) == 0:
		return fmt.Errorf("%w: no filter columns", ErrBadSpec)
	case s.Shards < 0:
		return fmt.Errorf("%w: %d shards", ErrBadSpec, s.Shards)
	case s.Train < 0:
		return fmt.Errorf("%w: train %d queries", ErrBadSpec, s.Train)
	case s.Artifact != "" && s.Train > 0:
		return fmt.Errorf("%w: artifact and train are mutually exclusive", ErrBadSpec)
	case math.IsNaN(s.DriftThreshold) || math.IsInf(s.DriftThreshold, 0) || s.DriftThreshold < 0:
		return fmt.Errorf("%w: drift threshold %g", ErrBadSpec, s.DriftThreshold)
	case s.DriftReservoir < -1:
		return fmt.Errorf("%w: drift reservoir %d", ErrBadSpec, s.DriftReservoir)
	case s.DriftThreshold > 0 && s.DriftReservoir == -1:
		return fmt.Errorf("%w: drift threshold set with drift monitoring disabled", ErrBadSpec)
	case s.RetrainQueries < 0:
		return fmt.Errorf("%w: retrain %d queries", ErrBadSpec, s.RetrainQueries)
	case s.RetrainTrees < 0:
		return fmt.Errorf("%w: retrain %d trees", ErrBadSpec, s.RetrainTrees)
	case s.driftEnabled() && s.Artifact == "" && s.Train == 0:
		return fmt.Errorf("%w: drift monitoring needs a surrogate (artifact or train)", ErrBadSpec)
	}
	if _, err := surf.ParseStatistic(s.Statistic); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if s.Kernel != "" {
		known := false
		for _, k := range surf.InferenceKernels() {
			if k == s.Kernel {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("%w: unknown inference kernel %q (have %v)",
				ErrBadSpec, s.Kernel, surf.InferenceKernels())
		}
	}
	if _, err := os.Stat(s.Data); err != nil {
		return fmt.Errorf("%w: dataset: %v", ErrBadSpec, err)
	}
	if s.Artifact != "" {
		f, err := os.Open(s.Artifact)
		if err != nil {
			return fmt.Errorf("%w: artifact: %v", ErrBadSpec, err)
		}
		info, err := surf.ReadSurrogateInfo(f)
		f.Close()
		if err != nil {
			return err // wraps surf.ErrBadArtifact
		}
		if info.Statistic != s.Statistic {
			return fmt.Errorf("%w: artifact trained for statistic %q, spec computes %q",
				surf.ErrBadArtifact, info.Statistic, s.Statistic)
		}
		if len(info.FilterColumns) != len(s.FilterColumns) {
			return fmt.Errorf("%w: artifact trained over %d filter columns, spec uses %d",
				surf.ErrBadArtifact, len(info.FilterColumns), len(s.FilterColumns))
		}
		for i, c := range s.FilterColumns {
			if info.FilterColumns[i] != c {
				return fmt.Errorf("%w: artifact trained over filter columns %v, spec uses %v",
					surf.ErrBadArtifact, info.FilterColumns, s.FilterColumns)
			}
		}
	}
	return nil
}

// entry is one catalog slot. All mutable fields are guarded by the
// registry mutex; the engineSet a field points to is itself immutable,
// so a Handle that copied the pointer under the lock reads it freely.
type entry struct {
	name    string
	spec    Spec
	version int
	// set is non-nil exactly when the entry is loaded; loading is
	// non-nil (and closed on completion) while a load is in flight.
	set     *engineSet
	loading chan struct{}
	// training marks the in-flight load as a startup training run.
	training bool
	loadErr  error
	// evicted distinguishes "never loaded" from "loaded once, evicted
	// under capacity pressure" in status reports.
	evicted bool
	// loadDur is the wall time of the last completed load (including
	// any startup training), kept across evictions for telemetry.
	loadDur time.Duration
	// inflight counts unreleased Handles; eviction skips busy entries.
	inflight int
	lruEl    *list.Element
	// store is the entry's living dataset: it outlives engine-set swaps
	// and evictions, so appended rows survive a hot swap or a reload,
	// and is rebuilt only when the spec's data path changes (storeData
	// remembers the path it was seeded from). Guarded by the registry
	// mutex like every other entry field; the Store itself is
	// concurrency-safe.
	store     *surf.Store
	storeData string
	// appendMu serializes Append's store-commit → engine-swap → drift
	// sequence per entry, off the registry mutex so appends never block
	// Acquire. Queries need no lock: engines swap data snapshots
	// atomically.
	appendMu sync.Mutex
	// retrainCancel cancels the in-flight drift-triggered retrain, if
	// any; detach and Remove fire it so an orphaned engine set does not
	// keep training.
	retrainCancel context.CancelFunc
}

// state reports the entry's lifecycle state for status listings.
func (e *entry) state() string {
	switch {
	case e.set != nil:
		return "ready"
	case e.loading != nil && e.training:
		return "training"
	case e.loading != nil:
		return "loading"
	case e.loadErr != nil:
		return "failed"
	case e.evicted:
		return "evicted"
	}
	return "unloaded"
}

// Registry is a concurrency-safe catalog of named, versioned engine
// entries. The zero value is not usable; construct with New.
type Registry struct {
	capacity int

	mu      sync.Mutex
	entries map[string]*entry
	// lru holds loaded entries, most recently used first.
	lru *list.List
}

// New returns an empty registry keeping at most capacity entries
// loaded at once (<= 0 means unbounded). Eviction is lazy and soft:
// it runs when a handle pins an entry and when one releases, and never
// unloads an entry with in-flight queries — so the loaded count can
// transiently exceed capacity until traffic touches the registry.
func New(capacity int) *Registry {
	return &Registry{
		capacity: capacity,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
}

// Register records (or, for an existing name, replaces) the spec for a
// dataset name and returns the entry's new version, starting at 1.
// Zero-valued fields of a replacement spec inherit from the replaced
// one, so a spec carrying only a new artifact path hot-swaps the model
// of a running entry. The swap is atomic: the loaded engine set (if
// any) is detached under the registry lock, requests holding a handle
// finish against the set they pinned, and the next request loads the
// new spec lazily. Invalid specs — including an artifact whose
// declared statistic or filter columns contradict the spec — are
// rejected without touching the entry.
func (r *Registry) Register(name string, spec Spec) (version int, err error) {
	if name == "" {
		return 0, fmt.Errorf("%w: empty dataset name", ErrBadSpec)
	}
	r.mu.Lock()
	if prev, ok := r.entries[name]; ok {
		spec = spec.merge(prev.spec)
	}
	r.mu.Unlock()
	// Validation does file I/O; keep it outside the lock. A concurrent
	// Register for the same name races benignly: both validate, last
	// write wins, exactly as two sequential PUTs would.
	if err := spec.validate(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name}
		r.entries[name] = e
	}
	e.spec = spec
	e.version++
	e.loadErr = nil
	r.detachLocked(e)
	return e.version, nil
}

// Remove deletes the named entry. Requests holding a handle finish
// against the engine set they pinned; new requests get
// ErrUnknownDataset.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	r.detachLocked(e)
	delete(r.entries, name)
	return nil
}

// detachLocked drops the entry's loaded engine set (handles already
// pinning it keep it alive) and removes it from the LRU. An in-flight
// load keeps running and discards its result on completion via the
// version check in Acquire's load path.
func (r *Registry) detachLocked(e *entry) {
	if e.lruEl != nil {
		r.lru.Remove(e.lruEl)
		e.lruEl = nil
	}
	if e.retrainCancel != nil {
		e.retrainCancel()
		e.retrainCancel = nil
	}
	if e.set != nil {
		e.set = nil
		e.evicted = false // replaced, not evicted
	}
}

// evictLocked unloads least-recently-used idle entries until the
// loaded count fits the capacity. Entries with in-flight queries are
// skipped — a busy entry is never evicted — so the loaded count may
// stay above capacity until handles release.
func (r *Registry) evictLocked() {
	if r.capacity <= 0 {
		return
	}
	for el := r.lru.Back(); el != nil && r.lru.Len() > r.capacity; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.inflight == 0 {
			r.lru.Remove(el)
			e.lruEl = nil
			e.set = nil
			e.evicted = true
			// The store survives (appended rows reload with the entry);
			// an in-flight retrain of the dropped set does not.
			if e.retrainCancel != nil {
				e.retrainCancel()
				e.retrainCancel = nil
			}
		}
		el = prev
	}
}

// Acquire resolves a dataset name to a handle on its current engine
// set, loading the entry first if needed. Concurrent acquirers of a
// cold entry share one load (and one training run); ctx bounds only
// this caller's wait — the load itself belongs to the registry and
// keeps running for the next acquirer if ctx expires. The returned
// handle pins the engine set against hot swaps and eviction; callers
// must Release it when the request completes.
func (r *Registry) Acquire(ctx context.Context, name string) (*Handle, error) {
	r.mu.Lock()
	for {
		e, ok := r.entries[name]
		if !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
		}
		if e.set != nil {
			e.inflight++
			r.lru.MoveToFront(e.lruEl)
			h := &Handle{r: r, e: e, set: e.set}
			// Evict only after pinning: the in-flight count protects
			// this entry, so capacity pressure lands on idle ones. A
			// load completion deliberately does not evict — its waiters
			// have not pinned yet, and evicting the entry they are
			// about to use would livelock a full registry.
			r.evictLocked()
			r.mu.Unlock()
			return h, nil
		}
		if e.loading != nil {
			ch := e.loading
			r.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			r.mu.Lock()
			continue
		}
		if e.loadErr != nil {
			err := e.loadErr
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: dataset %q failed to load: %w", name, err)
		}
		// Cold entry: start the load and loop back to wait on it.
		ch := make(chan struct{})
		e.loading = ch
		e.training = e.spec.Train > 0
		spec, version, store := e.spec, e.version, e.reusableStoreLocked()
		r.mu.Unlock()
		go r.load(name, spec, version, store, ch)
		r.mu.Lock()
	}
}

// reusableStoreLocked returns the entry's living store when the
// current spec still reads the same data path — a reload then serves
// the store's latest version, appended rows included — and nil when
// the data source changed, so the load seeds a fresh store from the
// new CSV.
func (e *entry) reusableStoreLocked() *surf.Store {
	if e.store != nil && e.storeData == e.spec.Data {
		return e.store
	}
	return nil
}

// load materializes an engine set for spec and installs it, unless a
// Register or Remove changed the entry while the load ran — then the
// result is discarded and the next Acquire loads the current spec.
// Loads deliberately run under a background context: they are shared
// by every waiter, so one caller's disconnect must not abort a
// training run others are waiting on.
func (r *Registry) load(name string, spec Spec, version int, store *surf.Store, ch chan struct{}) {
	start := time.Now()
	//lint:allow ctxflow: loads are shared by every waiter; one caller's disconnect must not abort a training run others wait on
	set, err := buildEngineSet(context.Background(), spec, version, store)
	dur := time.Since(start)
	r.mu.Lock()
	defer r.mu.Unlock()
	defer close(ch)
	e, ok := r.entries[name]
	if !ok || e.loading != ch {
		return // entry removed or reset mid-load
	}
	e.loading = nil
	e.training = false
	if e.version != version {
		return // spec swapped mid-load; discard, next Acquire reloads
	}
	e.loadDur = dur
	if err != nil {
		e.loadErr = err
		return
	}
	// No eviction here: the waiters blocked in Acquire have not pinned
	// the new set yet, so this entry would itself be the idle LRU
	// candidate. The first Acquire to pin it evicts on its behalf.
	e.set = set
	e.store = set.store
	e.storeData = spec.Data
	e.evicted = false
	e.lruEl = r.lru.PushFront(e)
}

// Warm starts loading the named entry without waiting for it: a cold
// or evicted entry begins its load (sharing it with any concurrent
// Acquire, exactly as Acquire's own cold path would), while an entry
// that is ready, already loading, or failed is left alone. It returns
// immediately in every case. Readiness probes use it so a /readyz
// check both reports and drives the lazily-loading default dataset
// toward ready.
func (r *Registry) Warm(name string) error {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	if e.set != nil || e.loading != nil || e.loadErr != nil {
		r.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	e.loading = ch
	e.training = e.spec.Train > 0
	spec, version, store := e.spec, e.version, e.reusableStoreLocked()
	r.mu.Unlock()
	go r.load(name, spec, version, store, ch)
	return nil
}

// release is Handle.Release: the entry becomes evictable again once
// its in-flight count drains.
func (r *Registry) release(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.inflight--
	r.evictLocked()
}

// ModelStatus is one entry's externally visible state, as reported by
// List and the /healthz and /v1/models endpoints.
type ModelStatus struct {
	Name    string
	Version int
	// State is one of unloaded, loading, training, ready, failed,
	// evicted.
	State string
	Spec  Spec
	// Rows is the loaded dataset's row count (0 unless ready).
	Rows int
	// Surrogate reports whether the loaded entry can serve surrogate
	// queries; Info carries the model's provenance when it can.
	Surrogate bool
	Info      *surf.SurrogateInfo
	// Err is the load failure, when State is failed.
	Err string
	// InFlight is the number of unreleased handles.
	InFlight int
	// LoadSeconds is the wall time of the last completed load,
	// including any startup training (0 if never loaded).
	LoadSeconds float64
	// Cache reports the entry's result cache: the merged-result cache
	// for sharded entries, the engine's own cache otherwise. Zero
	// unless ready.
	Cache surf.CacheStats
	// DataVersion is the dataset version the entry serves: 1 for the
	// CSV as loaded, incremented by every append (0 unless ready).
	DataVersion uint64
	// Drift reports the entry's drift monitor — nil when the spec does
	// not enable drift monitoring or the entry is not ready.
	Drift *DriftStatus
}

// DriftStatus is the externally visible state of one entry's drift
// monitor.
type DriftStatus struct {
	// Score is the surrogate's normalized residual over the replayed
	// reservoir as of the last check (0 until Checked).
	Score float64
	// Threshold is the spec's auto-retrain trigger (0 = score only).
	Threshold float64
	// Samples is the reservoir size being replayed.
	Samples int
	// Checked reports whether any drift evaluation has run yet.
	Checked bool
	// Retraining is true while a drift-triggered retrain is in flight;
	// Retrains counts completed ones for this engine set.
	Retraining bool
	Retrains   uint64
	// LastError is the most recent retrain failure, if any.
	LastError string
}

// List reports every entry's status, sorted by name.
func (r *Registry) List() []ModelStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelStatus, 0, len(r.entries))
	for _, e := range r.entries {
		st := ModelStatus{
			Name:        e.name,
			Version:     e.version,
			State:       e.state(),
			Spec:        e.spec,
			InFlight:    e.inflight,
			LoadSeconds: e.loadDur.Seconds(),
		}
		if e.loadErr != nil {
			st.Err = e.loadErr.Error()
		}
		if e.set != nil {
			// Live row count: appends grow the entry between loads.
			st.Rows = e.set.engine.Rows()
			st.Surrogate = e.set.engine.HasSurrogate()
			if info, ok := e.set.engine.SurrogateInfo(); ok {
				st.Info = &info
			}
			if len(e.set.shards) > 0 {
				st.Cache = e.set.merged.stats()
			} else {
				st.Cache = e.set.engine.CacheStats()
			}
			st.DataVersion = e.set.engine.DataVersion()
			if e.set.drift != nil {
				st.Drift = e.set.drift.status()
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Status reports one entry's status.
func (r *Registry) Status(name string) (ModelStatus, error) {
	for _, st := range r.List() {
		if st.Name == name {
			return st, nil
		}
	}
	return ModelStatus{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
}
