// Package registry is the multi-dataset catalog behind a surf serving
// process: a concurrency-safe mapping from dataset names to versioned
// engine entries, each described by a Spec (dataset CSV, region spec,
// surrogate artifact or startup-training budget, shard count) and
// materialized lazily on first request.
//
// # Lifecycle
//
// Register records or replaces a spec and bumps the entry's version;
// nothing is loaded until the first Acquire. Acquire resolves a name
// to a *Handle pinning the entry's current engine set, loading it
// first if necessary (concurrent acquirers of a cold entry share one
// load). Loaded entries live in an LRU; when more than Capacity
// entries are loaded, the least recently used idle entry is evicted
// back to the unloaded state — an entry with in-flight queries is
// never evicted, so the loaded count can temporarily exceed the
// capacity rather than break a running query. Remove deletes an entry.
//
// # Hot swap
//
// Register on an existing name is the hot-swap path (the HTTP layer's
// PUT /v1/models/{name}): the spec is replaced, the version bumped and
// the loaded engine set detached atomically under the registry lock —
// the same swap discipline as the engine's surrogate snapshots. A
// request that acquired a handle before the swap keeps the engine set
// it pinned until it releases; a request that acquires after sees the
// new version, lazily loaded. No request ever observes a torn state,
// and none is dropped. Fields left zero in a Register spec inherit
// from the replaced spec, so a PUT carrying only a new artifact path
// swaps the model of an existing dataset.
//
// # Sharded execution
//
// A spec with Shards = N > 1 splits the dataset into N contiguous
// row-range shards (views sharing the parent's column storage) and
// opens one engine per shard, every shard carrying the same surrogate
// and the full dataset's domain. Handle.Find then fans the query out:
// each shard mines with the identical query (same seed, verification
// deferred), the per-shard region lists are concatenated, ranked by
// score and merged through the engine's greedy IoU clustering
// (surf.MergeRegions), and the merged regions are verified against the
// full dataset — so TrueValue, Satisfies and ComplianceRate mean
// exactly what they mean for an unsharded engine. For surrogate-backed
// queries every shard optimizes the same model over the same domain,
// making the merged result differentially identical to the unsharded
// engine's; for use_true_function queries each shard optimizes its own
// rows at 1/N the per-evaluation cost and the merge reconciles the
// shard-local optima. Top-k fans out the same way with the merged
// candidates ranked by estimate. Merged results are cached per entry
// version (keyed by surf's canonical query fingerprint) and the cache
// dies with the engine set on every swap.
package registry
