package registry

import (
	"container/list"
	"sync"
	"sync/atomic"

	surf "surf"
)

// mergedCacheSize bounds the per-engine-set cache of sharded merged
// results, mirroring the engine's own result-cache default.
const mergedCacheSize = 64

// mergedCache is an LRU over sharded merged results, keyed by surf's
// canonical query fingerprint (surf.Query.CacheKey). Scope comes for
// free: each engineSet owns one cache and hot swaps replace whole
// sets, so entries can never outlive the model and data they were
// computed from. Deep copies go in and come out, matching the engine
// cache's aliasing contract.
type mergedCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
	// hits and misses are atomics so a metrics scrape never contends
	// with the query path, mirroring the engine cache.
	hits   atomic.Uint64
	misses atomic.Uint64
}

type mergedEntry struct {
	key string
	res *surf.Result
}

func newMergedCache(capacity int) *mergedCache {
	return &mergedCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *mergedCache) get(key string) (*surf.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return copyResult(el.Value.(*mergedEntry).res), true
}

// stats snapshots the cache counters as the engine's CacheStats shape.
func (c *mergedCache) stats() surf.CacheStats {
	st := surf.CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Capacity: c.cap,
	}
	c.mu.Lock()
	st.Entries = c.order.Len()
	c.mu.Unlock()
	return st
}

// clear drops every entry while keeping the hit/miss counters — the
// same contract as the engine cache's clear: a data append or retrain
// invalidates results, but a hit ratio that resets on every swap would
// be meaningless for capacity planning.
func (c *mergedCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

func (c *mergedCache) put(key string, res *surf.Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*mergedEntry).res = copyResult(res)
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&mergedEntry{key: key, res: copyResult(res)})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*mergedEntry).key)
	}
}

// copyResult deep-copies a result so cache entries and caller-visible
// results never share backing arrays.
func copyResult(r *surf.Result) *surf.Result {
	out := *r
	out.Regions = make([]surf.Region, len(r.Regions))
	for i, reg := range r.Regions {
		reg.Min = append([]float64(nil), reg.Min...)
		reg.Max = append([]float64(nil), reg.Max...)
		out.Regions[i] = reg
	}
	return &out
}
