package registry

import (
	"context"
	"errors"
	"testing"
	"time"

	surf "surf"
)

// appendRows builds n full-width (x, y, v) rows clustered like
// testCols, offset so appended batches are distinguishable from the
// seed data by any statistic over v.
func appendRows(n int, base float64) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		f := float64(i) / float64(n)
		rows[i] = []float64{0.1 + 0.8*f, 0.1 + 0.8*(1-f), base + f}
	}
	return rows
}

func TestAppendValidation(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	ctx := context.Background()
	if _, err := r.Append(ctx, "ghost", appendRows(1, 0)); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("append to unknown: got %v, want ErrUnknownDataset", err)
	}
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(ctx, "d", nil); !errors.Is(err, ErrBadAppend) {
		t.Fatalf("empty batch: got %v, want ErrBadAppend", err)
	}
	if _, err := r.Append(ctx, "d", [][]float64{{1, 2}}); !errors.Is(err, ErrBadAppend) {
		t.Fatalf("short row: got %v, want ErrBadAppend", err)
	}
	// A rejected batch changes nothing.
	st, _ := r.Status("d")
	if st.DataVersion != 1 || st.Rows != 300 {
		t.Fatalf("after rejected appends: version %d rows %d", st.DataVersion, st.Rows)
	}
}

// TestAppendSwapsDataVersion: an append publishes a new data version
// through the entry's engine, the result cache invalidates, and — the
// sticky-counter regression — the engine's CacheStats hit/miss
// counters survive the data swap exactly as they survive a model swap.
func TestAppendSwapsDataVersion(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	st, _ := r.Status("d")
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("pre-append cache stats = %+v, want 1 hit / 1 miss", st.Cache)
	}
	if st.DataVersion != 1 {
		t.Fatalf("pre-append data version = %d, want 1", st.DataVersion)
	}

	res, err := r.Append(ctx, "d", appendRows(50, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Rows != 350 || res.Appended != 50 {
		t.Fatalf("append result = %+v", res)
	}
	st, _ = r.Status("d")
	if st.DataVersion != 2 || st.Rows != 350 {
		t.Fatalf("post-append status: version %d rows %d", st.DataVersion, st.Rows)
	}
	// The swap cleared cached results but kept the counters (sticky
	// stats, same contract as a model hot swap).
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 0 {
		t.Fatalf("post-append cache stats = %+v, want sticky 1 hit / 1 miss, 0 entries", st.Cache)
	}
	// The pinned handle sees the new version too: pinning protects
	// against set swaps, while within a set the engines swap data
	// snapshots atomically per query.
	if got := h.DataVersion(); got != 2 {
		t.Fatalf("pinned handle data version = %d, want 2", got)
	}
	// A fresh handle serves the appended rows.
	h2, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if got := h2.DataVersion(); got != 2 {
		t.Fatalf("fresh handle data version = %d, want 2", got)
	}
	if got := h2.Engine().Rows(); got != 350 {
		t.Fatalf("fresh handle rows = %d, want 350", got)
	}
}

// TestAppendKeepsMergedCacheCounters is the sharded half of the
// sticky-counter regression: the per-entry merged-result cache is
// cleared by an append but its hit/miss counters accumulate across the
// data swap.
func TestAppendKeepsMergedCacheCounters(t *testing.T) {
	fx := newFixture(t, 300)
	spec := fx.spec(fx.artifactA)
	spec.Shards = 2
	r := New(0)
	if _, err := r.Register("d", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(ctx, "d", appendRows(40, 2)); err != nil {
		t.Fatal(err)
	}
	st, _ := r.Status("d")
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 0 {
		t.Fatalf("merged cache after append = %+v, want sticky 1 hit / 1 miss, 0 entries", st.Cache)
	}
	// The same handle re-queries: a miss against the cleared cache, and
	// the counters keep accumulating.
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	st, _ = r.Status("d")
	if st.Cache.Hits != 1 || st.Cache.Misses != 2 || st.Cache.Entries != 1 {
		t.Fatalf("merged cache after re-query = %+v, want 1 hit / 2 misses / 1 entry", st.Cache)
	}
}

// TestShardedAppendParity is the differential acceptance check at the
// registry layer: an entry grown by appends answers Find and FindTopK
// bit-identically to an entry loaded flat from a CSV holding the same
// rows, sharded execution included.
func TestShardedAppendParity(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	extra := appendRows(60, 2)

	// The flat reference: seed rows + extra rows in one CSV.
	names, cols := testCols(300)
	flat := make([][]float64, len(cols))
	for c := range cols {
		flat[c] = append([]float64(nil), cols[c]...)
		for _, row := range extra {
			flat[c] = append(flat[c], row[c])
		}
	}
	flatCSV := fx.csv + ".flat.csv"
	writeCSV(t, flatCSV, names, flat)

	for _, shards := range []int{0, 3} {
		flatSpec := Spec{Data: flatCSV, FilterColumns: []string{"x", "y"}, Statistic: "count",
			Artifact: fx.artifactA, Shards: shards}
		grownSpec := fx.spec(fx.artifactA)
		grownSpec.Shards = shards
		flatName := "flat"
		grownName := "grown"
		if shards > 0 {
			flatName, grownName = "flat-sharded", "grown-sharded"
		}
		if _, err := r.Register(flatName, flatSpec); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Register(grownName, grownSpec); err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if res, err := r.Append(ctx, grownName, extra); err != nil {
			t.Fatal(err)
		} else if res.Version != 2 || res.Rows != 360 {
			t.Fatalf("append result = %+v", res)
		}

		hf, err := r.Acquire(ctx, flatName)
		if err != nil {
			t.Fatal(err)
		}
		hg, err := r.Acquire(ctx, grownName)
		if err != nil {
			t.Fatal(err)
		}
		fres, err := hf.Find(ctx, fastQuery)
		if err != nil {
			t.Fatal(err)
		}
		gres, err := hg.Find(ctx, fastQuery)
		if err != nil {
			t.Fatal(err)
		}
		if !regionsEqual(fres, gres) {
			t.Fatalf("shards=%d: Find over flat CSV and grown store differ", shards)
		}
		topk := surf.TopKQuery{K: 3, Largest: true, Seed: 5, Glowworms: 16, Iterations: 10}
		ftop, err := hf.FindTopK(ctx, topk)
		if err != nil {
			t.Fatal(err)
		}
		gtop, err := hg.FindTopK(ctx, topk)
		if err != nil {
			t.Fatal(err)
		}
		if !regionsEqual(ftop, gtop) {
			t.Fatalf("shards=%d: FindTopK over flat CSV and grown store differ", shards)
		}
		hf.Release()
		hg.Release()
	}
}

// TestAppendedRowsSurviveHotSwap: the living store belongs to the
// entry, not the engine set, so a model hot swap (Register with a new
// artifact) reloads the entry at the appended store's latest version
// rather than rewinding to the CSV.
func TestAppendedRowsSurviveHotSwap(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Append(ctx, "d", appendRows(25, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("d", Spec{Artifact: fx.artifactB}); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Version() != 2 {
		t.Fatalf("entry version = %d, want 2", h.Version())
	}
	if got := h.DataVersion(); got != 2 {
		t.Fatalf("data version after hot swap = %d, want 2 (appends kept)", got)
	}
	if got := h.Engine().Rows(); got != 325 {
		t.Fatalf("rows after hot swap = %d, want 325", got)
	}
	// A new data path does rebuild the store from its CSV.
	names, cols := testCols(100)
	otherCSV := fx.csv + ".other.csv"
	writeCSV(t, otherCSV, names, cols)
	if _, err := r.Register("d", Spec{Data: otherCSV}); err != nil {
		t.Fatal(err)
	}
	h2, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if got := h2.DataVersion(); got != 1 {
		t.Fatalf("data version after data-path change = %d, want fresh 1", got)
	}
	if got := h2.Engine().Rows(); got != 100 {
		t.Fatalf("rows after data-path change = %d, want 100", got)
	}
}

// TestAppendDriftTriggersRetrain drives the whole living-data loop:
// append rows that double every count, watch the drift score cross the
// threshold, and wait for the background retrain to extend the model
// and republish — all while the entry keeps serving queries.
func TestAppendDriftTriggersRetrain(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	spec := Spec{
		Data: fx.csv, FilterColumns: []string{"x", "y"}, Statistic: "count",
		Train: 60, TrainSeed: 3,
		DriftThreshold: 0.05, DriftReservoir: 16,
		RetrainQueries: 24, RetrainTrees: 3,
	}
	if _, err := r.Register("d", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	st, _ := r.Status("d")
	if st.Drift == nil || st.Drift.Checked || st.Drift.Samples != 16 || st.Drift.Threshold != 0.05 {
		t.Fatalf("pre-append drift status = %+v", st.Drift)
	}
	if _, ok := h.DriftScore(); ok {
		t.Fatal("drift score reported before any check")
	}
	baseTrees := st.Info.Trees

	// Doubling the dataset doubles every count; a surrogate trained on
	// the old counts is now wrong by ~half the signal.
	_, cols := testCols(300)
	double := make([][]float64, 300)
	for i := range double {
		double[i] = []float64{cols[0][i], cols[1][i], cols[2][i]}
	}
	res, err := r.Append(ctx, "d", double)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drift == nil || !res.Drift.Checked {
		t.Fatalf("append did not score drift: %+v", res)
	}
	if res.Drift.Score <= 0.05 {
		t.Fatalf("drift score %v after doubling the data, want > threshold", res.Drift.Score)
	}
	if !res.RetrainStarted {
		t.Fatalf("drift above threshold did not start a retrain: %+v", res.Drift)
	}
	if score, ok := h.DriftScore(); !ok || score != res.Drift.Score {
		t.Fatalf("handle drift score = %v/%v, want %v", score, ok, res.Drift.Score)
	}

	// The retrain republishes in the background; queries keep working
	// the whole time.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := h.Find(ctx, fastQuery); err != nil {
			t.Fatalf("query during retrain: %v", err)
		}
		st, _ = r.Status("d")
		if st.Drift.Retrains >= 1 && !st.Drift.Retraining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain did not complete: %+v", st.Drift)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Drift.LastError != "" {
		t.Fatalf("retrain reported error: %s", st.Drift.LastError)
	}
	if st.Info == nil || st.Info.Trees != baseTrees+3 {
		t.Fatalf("trees after retrain = %+v, want %d", st.Info, baseTrees+3)
	}
	if st.Info.DataVersion != 2 {
		t.Fatalf("surrogate info data version = %d, want 2", st.Info.DataVersion)
	}
	// One retrain, not a storm: the score was re-measured after the
	// retrain and further appends below threshold stay quiet.
	calm, err := r.Append(ctx, "d", appendRows(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if calm.RetrainStarted && calm.Drift.Score <= 0.05 {
		t.Fatalf("calm append started a retrain: %+v", calm.Drift)
	}
}
