package registry

import (
	"bytes"
	"context"
	"fmt"
	"os"

	surf "surf"
	"surf/drift"
)

// defaultDriftReservoir, defaultRetrainQueries and defaultRetrainTrees
// are the drift-monitor defaults a spec's zero values resolve to.
const (
	defaultDriftReservoir = 64
	defaultRetrainQueries = 256
	defaultRetrainTrees   = 25
)

// engineSet is one loaded materialization of a spec: the full-dataset
// engine plus, for sharded entries, one engine per row-range shard.
// The set's structure is immutable after buildEngineSet returns — hot
// swaps replace whole sets, never re-point one — so handles read it
// without locks. The engines inside are themselves living: an append
// swaps new data snapshots into them (and a drift-triggered retrain a
// new model) through the engine's own atomic snapshot discipline, so
// queries in flight never see a torn set.
type engineSet struct {
	version int
	spec    Spec
	// engine serves unsharded execution and, for sharded entries,
	// full-dataset verification of merged regions.
	engine *surf.Engine
	// shards are the per-row-range engines (nil when unsharded). Each
	// carries the same surrogate as engine and the full dataset's
	// domain, so every shard optimizes over the same region space.
	shards []*surf.Engine
	// merged caches sharded merged results. It lives and dies with the
	// set: a hot swap installs a fresh set with a fresh cache, and an
	// append or retrain clears it (keeping its counters), so stale
	// merged results can never be served.
	merged *mergedCache
	// store is the living dataset backing the set's engines; shared
	// with the entry so appended rows survive set swaps.
	store *surf.Store
	// drift is the entry's drift monitor (nil when the spec does not
	// enable monitoring).
	drift *driftState
}

// buildEngineSet materializes spec: read the CSV (or adopt the entry's
// existing living store, appended rows included), open the full engine
// (and shard engines over row-range views sharing its columns), then
// install the surrogate — loaded from the artifact or trained from a
// generated workload — into every engine, all from one model so the
// shards and the full engine agree bit-for-bit. When the spec enables
// drift monitoring, a reservoir of the training queries (or generated
// probes, on the artifact path) is kept for replay after appends.
func buildEngineSet(ctx context.Context, spec Spec, version int, store *surf.Store) (*engineSet, error) {
	stat, err := surf.ParseStatistic(spec.Statistic)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if store == nil {
		f, err := os.Open(spec.Data)
		if err != nil {
			return nil, err
		}
		seed, err := surf.ReadCSVDataset(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		store, err = surf.NewStore(seed)
		if err != nil {
			return nil, err
		}
	}
	ds, dataVersion := store.View()
	cfg := surf.Config{
		FilterColumns: spec.FilterColumns,
		Statistic:     stat,
		TargetColumn:  spec.TargetColumn,
		UseGridIndex:  spec.UseGridIndex,
	}
	// The spec's inference backend applies to the full engine and every
	// shard alike; an empty name lets the engine resolve the process
	// default (SURF_KERNEL, then the built-in default).
	var opts []surf.Option
	if spec.Kernel != "" {
		opts = append(opts, surf.WithInferenceKernel(spec.Kernel))
	}
	full, err := surf.Open(ds, cfg, opts...)
	if err != nil {
		return nil, err
	}
	set := &engineSet{
		version: version,
		spec:    spec,
		engine:  full,
		merged:  newMergedCache(mergedCacheSize),
		store:   store,
	}

	if spec.Shards > 1 {
		// Every shard gets the full dataset's domain: shards must
		// optimize over one shared region space or their results could
		// not be merged (and a shard's own row range would otherwise
		// shrink its domain).
		min, max := full.Domain()
		n := ds.Len()
		for i := 0; i < spec.Shards; i++ {
			lo, hi := i*n/spec.Shards, (i+1)*n/spec.Shards
			sub, err := ds.Slice(lo, hi)
			if err != nil {
				return nil, err
			}
			se, err := surf.Open(sub, cfg, append(opts, surf.WithDomain(min, max))...)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			set.shards = append(set.shards, se)
		}
	}
	if dataVersion != 1 {
		// A reloaded store past its seed version: Open stamped the
		// engines as version 1, so restamp them with the store's real
		// version (same rows, same domain — only the label moves).
		if err := full.SetDataset(ds, dataVersion); err != nil {
			return nil, err
		}
		if err := set.resliceShards(ds, dataVersion); err != nil {
			return nil, err
		}
	}

	var wl surf.Workload
	trained := false
	switch {
	case spec.Artifact != "":
		// Read the artifact once and load it into every engine from
		// memory, so all engines restore the identical model even if
		// the file changes under us mid-load.
		raw, err := os.ReadFile(spec.Artifact)
		if err != nil {
			return nil, err
		}
		if err := set.loadModel(ctx, raw); err != nil {
			return nil, err
		}
	case spec.Train > 0:
		wl, err = full.GenerateWorkloadContext(ctx, spec.Train, spec.TrainSeed)
		if err != nil {
			return nil, err
		}
		if err := full.TrainSurrogateContext(ctx, wl, surf.TrainOptions{Seed: spec.TrainSeed}); err != nil {
			return nil, err
		}
		trained = true
		if len(set.shards) > 0 {
			// Propagate the one trained model to the shards through the
			// artifact round trip (bit-identical by the artifact tests).
			var buf bytes.Buffer
			if err := full.SaveSurrogateContext(ctx, &buf); err != nil {
				return nil, err
			}
			for i, se := range set.shards {
				if err := se.LoadSurrogateContext(ctx, bytes.NewReader(buf.Bytes())); err != nil {
					return nil, fmt.Errorf("shard %d: %w", i, err)
				}
			}
		}
	}

	if spec.driftEnabled() {
		capacity := spec.DriftReservoir
		if capacity <= 0 {
			capacity = defaultDriftReservoir
		}
		rsv := drift.NewReservoir(capacity, spec.TrainSeed+0x5eed)
		if trained {
			// Replay what the surrogate was actually trained on: drift
			// on those regions is exactly "the model no longer matches
			// its own training distribution".
			for i := 0; i < wl.Len(); i++ {
				c, h, _ := wl.Query(i)
				rsv.Add(c, h)
			}
		} else {
			// Artifact path: the training workload is gone, so probe
			// with generated regions over the serving domain. Costs one
			// data scan per probe, once, at load time.
			probe, err := full.GenerateWorkloadContext(ctx, capacity, spec.TrainSeed+1)
			if err != nil {
				return nil, err
			}
			for i := 0; i < probe.Len(); i++ {
				c, h, _ := probe.Query(i)
				rsv.Add(c, h)
			}
		}
		set.drift = &driftState{threshold: spec.DriftThreshold, samples: rsv.Samples()}
	}
	return set, nil
}

// resliceShards re-points every shard engine at its row range of a new
// data version, keeping all shards on the full engine's domain so
// merged results stay meaningful. Shard boundaries move as the row
// count grows — the contiguous-range invariant (shard i owns rows
// [i*n/k, (i+1)*n/k)) holds at every version.
func (s *engineSet) resliceShards(ds *surf.Dataset, version uint64) error {
	if len(s.shards) == 0 {
		return nil
	}
	min, max := s.engine.Domain()
	n := ds.Len()
	k := len(s.shards)
	for i, se := range s.shards {
		sub, err := ds.Slice(i*n/k, (i+1)*n/k)
		if err != nil {
			return err
		}
		if err := se.SetDataset(sub, version, surf.WithDomain(min, max)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// loadModel installs one artifact into the full engine and every
// shard engine.
func (s *engineSet) loadModel(ctx context.Context, raw []byte) error {
	if err := s.engine.LoadSurrogateContext(ctx, bytes.NewReader(raw)); err != nil {
		return err
	}
	for i, se := range s.shards {
		if err := se.LoadSurrogateContext(ctx, bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
