package registry

import (
	"bytes"
	"context"
	"fmt"
	"os"

	surf "surf"
)

// engineSet is one loaded materialization of a spec: the full-dataset
// engine plus, for sharded entries, one engine per row-range shard.
// An engineSet is immutable after buildEngineSet returns — hot swaps
// replace whole sets, never mutate one — so handles read it without
// locks, the snapshot discipline the engine itself uses for surrogate
// swaps.
type engineSet struct {
	version int
	// engine serves unsharded execution and, for sharded entries,
	// full-dataset verification of merged regions.
	engine *surf.Engine
	// shards are the per-row-range engines (nil when unsharded). Each
	// carries the same surrogate as engine and the full dataset's
	// domain, so every shard optimizes over the same region space.
	shards []*surf.Engine
	rows   int
	// merged caches sharded merged results. It lives and dies with the
	// set: a hot swap installs a fresh set with a fresh cache, so a
	// stale model's merged results can never be served.
	merged *mergedCache
}

// buildEngineSet materializes spec: read the CSV, open the full engine
// (and shard engines over row-range views sharing its columns), then
// install the surrogate — loaded from the artifact or trained from a
// generated workload — into every engine, all from one model so the
// shards and the full engine agree bit-for-bit.
func buildEngineSet(ctx context.Context, spec Spec, version int) (*engineSet, error) {
	stat, err := surf.ParseStatistic(spec.Statistic)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	f, err := os.Open(spec.Data)
	if err != nil {
		return nil, err
	}
	ds, err := surf.ReadCSVDataset(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	cfg := surf.Config{
		FilterColumns: spec.FilterColumns,
		Statistic:     stat,
		TargetColumn:  spec.TargetColumn,
		UseGridIndex:  spec.UseGridIndex,
	}
	// The spec's inference backend applies to the full engine and every
	// shard alike; an empty name lets the engine resolve the process
	// default (SURF_KERNEL, then the built-in default).
	var opts []surf.Option
	if spec.Kernel != "" {
		opts = append(opts, surf.WithInferenceKernel(spec.Kernel))
	}
	full, err := surf.Open(ds, cfg, opts...)
	if err != nil {
		return nil, err
	}
	set := &engineSet{version: version, engine: full, rows: ds.Len(), merged: newMergedCache(mergedCacheSize)}

	if spec.Shards > 1 {
		// Every shard gets the full dataset's domain: shards must
		// optimize over one shared region space or their results could
		// not be merged (and a shard's own row range would otherwise
		// shrink its domain).
		min, max := full.Domain()
		n := ds.Len()
		for i := 0; i < spec.Shards; i++ {
			lo, hi := i*n/spec.Shards, (i+1)*n/spec.Shards
			sub, err := ds.Slice(lo, hi)
			if err != nil {
				return nil, err
			}
			se, err := surf.Open(sub, cfg, append(opts, surf.WithDomain(min, max))...)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			set.shards = append(set.shards, se)
		}
	}

	switch {
	case spec.Artifact != "":
		// Read the artifact once and load it into every engine from
		// memory, so all engines restore the identical model even if
		// the file changes under us mid-load.
		raw, err := os.ReadFile(spec.Artifact)
		if err != nil {
			return nil, err
		}
		if err := set.loadModel(ctx, raw); err != nil {
			return nil, err
		}
	case spec.Train > 0:
		wl, err := full.GenerateWorkloadContext(ctx, spec.Train, spec.TrainSeed)
		if err != nil {
			return nil, err
		}
		if err := full.TrainSurrogateContext(ctx, wl, surf.TrainOptions{Seed: spec.TrainSeed}); err != nil {
			return nil, err
		}
		if len(set.shards) > 0 {
			// Propagate the one trained model to the shards through the
			// artifact round trip (bit-identical by the artifact tests).
			var buf bytes.Buffer
			if err := full.SaveSurrogateContext(ctx, &buf); err != nil {
				return nil, err
			}
			for i, se := range set.shards {
				if err := se.LoadSurrogateContext(ctx, bytes.NewReader(buf.Bytes())); err != nil {
					return nil, fmt.Errorf("shard %d: %w", i, err)
				}
			}
		}
	}
	return set, nil
}

// loadModel installs one artifact into the full engine and every
// shard engine.
func (s *engineSet) loadModel(ctx context.Context, raw []byte) error {
	if err := s.engine.LoadSurrogateContext(ctx, bytes.NewReader(raw)); err != nil {
		return err
	}
	for i, se := range s.shards {
		if err := se.LoadSurrogateContext(ctx, bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
