package registry

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sync/atomic"

	surf "surf"
	"surf/drift"
)

// driftState is one engine set's drift monitor: an immutable reservoir
// of replayable region queries plus the atomics the monitor and the
// status/metrics paths share. The samples never change after load; the
// score, retrain flag and counters are lock-free so a metrics scrape
// never contends with an append or a retrain.
type driftState struct {
	threshold float64
	samples   []drift.Sample
	// scoreBits holds the last drift score as float64 bits; checked
	// flips once the first evaluation lands.
	scoreBits atomic.Uint64
	checked   atomic.Bool
	// retraining guards the single in-flight retrain per set (CAS to
	// claim); retrains counts completed ones.
	retraining atomic.Bool
	retrains   atomic.Uint64
	retrainErr atomic.Pointer[string]
}

func (d *driftState) score() float64 { return math.Float64frombits(d.scoreBits.Load()) }

func (d *driftState) setScore(s float64) {
	d.scoreBits.Store(math.Float64bits(s))
	d.checked.Store(true)
}

// status snapshots the monitor for ModelStatus.
func (d *driftState) status() *DriftStatus {
	st := &DriftStatus{
		Score:      d.score(),
		Threshold:  d.threshold,
		Samples:    len(d.samples),
		Checked:    d.checked.Load(),
		Retraining: d.retraining.Load(),
		Retrains:   d.retrains.Load(),
	}
	if msg := d.retrainErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}

// AppendResult reports one committed append: the data version it
// published, the entry's new total row count, and — when the entry
// monitors drift — the post-append drift report and whether it
// triggered a background retrain.
type AppendResult struct {
	Version  uint64
	Rows     int
	Appended int
	Drift    *DriftStatus
	// RetrainStarted is true when this append's drift score crossed the
	// spec's threshold and kicked a background retrain (at most one in
	// flight per entry; an append during a retrain never starts a
	// second).
	RetrainStarted bool
}

// Append commits a batch of rows — each a full-width row in the
// dataset's column order — to the named entry's living store and swaps
// the new data version into its serving engines. The swap is the
// engine's own snapshot swap: queries in flight finish against the
// version they pinned, new queries see the appended rows, and the
// per-entry merged-result cache is cleared (its hit/miss counters
// survive, as with a model swap). Sharded entries re-slice every shard
// over the grown row set, all on the full engine's refreshed domain.
//
// When the spec enables drift monitoring, the reservoir of training
// queries is then replayed against the new data version: the resulting
// score is reported (and exposed via ModelStatus and /metrics), and a
// score above Spec.DriftThreshold starts the incremental retrain in
// the background — Append itself never blocks on training. Batches the
// store rejects (wrong width, empty) fail with ErrBadAppend before
// anything changes.
//
// Appends to one entry are serialized; appends to different entries
// run concurrently.
func (r *Registry) Append(ctx context.Context, name string, rows [][]float64) (AppendResult, error) {
	if len(rows) == 0 {
		return AppendResult{}, fmt.Errorf("%w: empty batch", ErrBadAppend)
	}
	h, err := r.Acquire(ctx, name)
	if err != nil {
		return AppendResult{}, err
	}
	defer h.Release()
	e, set := h.e, h.set
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	if _, err := set.store.Append(rows); err != nil {
		return AppendResult{}, fmt.Errorf("%w: %v", ErrBadAppend, err)
	}
	// Re-read the view rather than trusting the append's version: if a
	// concurrent append through a different (older, pinned) engine set
	// landed first, the engines swap straight to the merged latest.
	ds, version := set.store.View()
	if err := set.engine.SetDataset(ds, version); err != nil {
		return AppendResult{}, err
	}
	if err := set.resliceShards(ds, version); err != nil {
		return AppendResult{}, err
	}
	set.merged.clear()
	out := AppendResult{Version: version, Rows: ds.Len(), Appended: len(rows)}
	if set.drift == nil {
		return out, nil
	}
	rep, err := drift.Evaluate(ctx, set.engine, set.drift.samples)
	if err != nil {
		// The append itself landed and serves; only the drift check was
		// cut short (typically the caller's context).
		return out, err
	}
	set.drift.setScore(rep.Score)
	if set.drift.threshold > 0 && rep.Score > set.drift.threshold &&
		set.drift.retraining.CompareAndSwap(false, true) {
		r.startRetrain(e, set)
		out.RetrainStarted = true
	}
	out.Drift = set.drift.status()
	return out, nil
}

// startRetrain launches the background retrain for set, wiring its
// cancellation into the entry so a hot swap, eviction or Remove stops
// a retrain whose engine set is being dropped. The caller must have
// claimed set.drift.retraining.
func (r *Registry) startRetrain(e *entry, set *engineSet) {
	//lint:allow ctxflow: the retrain belongs to the entry, not to any single request; cancellation is wired to detach/evict/Remove instead
	ctx, cancel := context.WithCancel(context.Background())
	r.mu.Lock()
	e.retrainCancel = cancel
	r.mu.Unlock()
	go func() {
		defer set.drift.retraining.Store(false)
		defer cancel()
		set.retrain(ctx)
	}()
}

// retrain is the drift-triggered incremental retrain: generate a fresh
// workload against the latest data version, fold the spec's extra
// boosting rounds into the serving surrogate (all-or-nothing), fan the
// extended model out to the shards, clear the merged cache and
// re-score. Every model install is the engine's atomic snapshot swap,
// so queries keep serving — on the old model, then the new — with
// nothing dropped in between.
func (s *engineSet) retrain(ctx context.Context) {
	d := s.drift
	fail := func(err error) {
		msg := err.Error()
		d.retrainErr.Store(&msg)
	}
	queries := s.spec.RetrainQueries
	if queries <= 0 {
		queries = defaultRetrainQueries
	}
	trees := s.spec.RetrainTrees
	if trees <= 0 {
		trees = defaultRetrainTrees
	}
	// Vary the seed per round so successive retrains do not replay one
	// frozen workload against ever-changing data.
	seed := s.spec.TrainSeed + 31*(d.retrains.Load()+1)
	wl, err := s.engine.GenerateWorkloadContext(ctx, queries, seed)
	if err != nil {
		fail(err)
		return
	}
	if err := s.engine.ContinueTrainingContext(ctx, trees, wl); err != nil {
		fail(err)
		return
	}
	if len(s.shards) > 0 {
		var buf bytes.Buffer
		if err := s.engine.SaveSurrogateContext(ctx, &buf); err != nil {
			fail(err)
			return
		}
		for _, se := range s.shards {
			if err := se.LoadSurrogateContext(ctx, bytes.NewReader(buf.Bytes())); err != nil {
				fail(err)
				return
			}
		}
	}
	s.merged.clear()
	d.retrainErr.Store(nil)
	d.retrains.Add(1)
	if rep, err := drift.Evaluate(ctx, s.engine, d.samples); err == nil {
		d.setScore(rep.Score)
	}
}

// DataVersion reports the dataset version the pinned engine set
// serves.
func (h *Handle) DataVersion() uint64 { return h.set.engine.DataVersion() }

// DriftScore returns the pinned set's last drift score; ok is false
// when the entry does not monitor drift or no check has run yet.
func (h *Handle) DriftScore() (score float64, ok bool) {
	d := h.set.drift
	if d == nil || !d.checked.Load() {
		return 0, false
	}
	return d.score(), true
}

// Store returns the pinned entry's living store (never nil for a
// loaded entry); admin layers use it for direct inspection.
func (h *Handle) Store() *surf.Store { return h.set.store }
