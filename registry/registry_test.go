package registry

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"

	surf "surf"
)

// testCols builds a clustered 2-d dataset with a spatially varying
// value column: v peaks near the (0.7, 0.3) cluster, so Mean queries
// have a real region to find.
func testCols(n int) (names []string, cols [][]float64) {
	rng := rand.New(rand.NewPCG(7, 11))
	xs := make([]float64, n)
	ys := make([]float64, n)
	vs := make([]float64, n)
	for i := range xs {
		if i%3 == 0 {
			xs[i] = 0.7 + rng.NormFloat64()*0.05
			ys[i] = 0.3 + rng.NormFloat64()*0.05
		} else {
			xs[i] = rng.Float64()
			ys[i] = rng.Float64()
		}
		dx, dy := xs[i]-0.7, ys[i]-0.3
		vs[i] = math.Exp(-(dx*dx + dy*dy) / 0.02)
	}
	return []string{"x", "y", "v"}, [][]float64{xs, ys, vs}
}

// writeCSV writes columns as a CSV dataset file.
func writeCSV(t *testing.T, path string, names []string, cols [][]float64) {
	t.Helper()
	ds, err := surf.NewDataset(names, cols)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

// trainArtifact trains a Count surrogate over x,y on the CSV and saves
// it; trees distinguishes artifacts in hot-swap tests.
func trainArtifact(t *testing.T, csvPath, outPath string, trees int) {
	t.Helper()
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := surf.ReadCSVDataset(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := surf.Open(ds, surf.Config{FilterColumns: []string{"x", "y"}, Statistic: surf.Count})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := eng.GenerateWorkload(150, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.TrainSurrogate(wl, surf.TrainOptions{Trees: trees}); err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := eng.SaveSurrogate(out); err != nil {
		t.Fatal(err)
	}
}

// testFixture is one dataset CSV plus two distinguishable artifacts.
type testFixture struct {
	csv, artifactA, artifactB string
}

func newFixture(t *testing.T, rows int) testFixture {
	t.Helper()
	dir := t.TempDir()
	fx := testFixture{
		csv:       filepath.Join(dir, "data.csv"),
		artifactA: filepath.Join(dir, "a.surf"),
		artifactB: filepath.Join(dir, "b.surf"),
	}
	names, cols := testCols(rows)
	writeCSV(t, fx.csv, names, cols)
	trainArtifact(t, fx.csv, fx.artifactA, 5)
	trainArtifact(t, fx.csv, fx.artifactB, 12)
	return fx
}

func (fx testFixture) spec(artifact string) Spec {
	return Spec{Data: fx.csv, FilterColumns: []string{"x", "y"}, Statistic: "count", Artifact: artifact}
}

// fastQuery keeps swarm runs cheap.
var fastQuery = surf.Query{
	Threshold: 20, Above: true, Seed: 3,
	Glowworms: 16, Iterations: 10, MaxRegions: 4,
}

func TestRegisterValidation(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	cases := []struct {
		name string
		key  string
		spec Spec
	}{
		{"empty name", "", fx.spec(fx.artifactA)},
		{"no data", "d", Spec{FilterColumns: []string{"x"}, Statistic: "count"}},
		{"no filters", "d", Spec{Data: fx.csv, Statistic: "count"}},
		{"bad statistic", "d", Spec{Data: fx.csv, FilterColumns: []string{"x"}, Statistic: "nope"}},
		{"missing data file", "d", Spec{Data: fx.csv + ".gone", FilterColumns: []string{"x"}, Statistic: "count"}},
		{"artifact and train", "d", Spec{Data: fx.csv, FilterColumns: []string{"x"}, Statistic: "count", Artifact: fx.artifactA, Train: 10}},
		{"negative shards", "d", Spec{Data: fx.csv, FilterColumns: []string{"x"}, Statistic: "count", Shards: -1}},
	}
	for _, c := range cases {
		if _, err := r.Register(c.key, c.spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", c.name, err)
		}
	}

	// Artifact metadata contradicting the spec fails with ErrBadArtifact
	// at registration, not at first query.
	bad := fx.spec(fx.artifactA)
	bad.Statistic = "mean"
	bad.TargetColumn = "v"
	if _, err := r.Register("d", bad); !errors.Is(err, surf.ErrBadArtifact) {
		t.Errorf("statistic mismatch: got %v, want ErrBadArtifact", err)
	}
	bad = fx.spec(fx.artifactA)
	bad.FilterColumns = []string{"y", "x"}
	if _, err := r.Register("d", bad); !errors.Is(err, surf.ErrBadArtifact) {
		t.Errorf("filter order mismatch: got %v, want ErrBadArtifact", err)
	}
}

func TestAcquireUnknownAndRemove(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	ctx := context.Background()
	if _, err := r.Acquire(ctx, "ghost"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("got %v, want ErrUnknownDataset", err)
	}
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("d"); err != nil {
		t.Fatal(err)
	}
	// The in-flight handle keeps serving the set it pinned.
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Errorf("find on removed dataset's pinned handle: %v", err)
	}
	h.Release()
	if _, err := r.Acquire(ctx, "d"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("acquire after remove: got %v, want ErrUnknownDataset", err)
	}
	if err := r.Remove("d"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("double remove: got %v, want ErrUnknownDataset", err)
	}
}

func TestLazyLoadAndStates(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	st, err := r.Status("d")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "unloaded" || st.Version != 1 {
		t.Fatalf("pre-acquire status = %+v", st)
	}
	h, err := r.Acquire(context.Background(), "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	st, _ = r.Status("d")
	if st.State != "ready" || st.Rows != 300 || !st.Surrogate || st.InFlight != 1 {
		t.Fatalf("post-acquire status = %+v", st)
	}
	if st.Info == nil || st.Info.Trees != 5 {
		t.Fatalf("surrogate info = %+v", st.Info)
	}
	if h.Version() != 1 || h.Sharded() {
		t.Fatalf("handle version %d sharded %v", h.Version(), h.Sharded())
	}
}

func TestSpecInheritanceOnSwap(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	// A PUT carrying only the new artifact inherits everything else.
	v, err := r.Register("d", Spec{Artifact: fx.artifactB})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version %d after swap, want 2", v)
	}
	st, _ := r.Status("d")
	if st.Spec.Data != fx.csv || st.Spec.Statistic != "count" || st.Spec.Artifact != fx.artifactB {
		t.Fatalf("merged spec = %+v", st.Spec)
	}
	// Switching to startup training drops the inherited artifact.
	if _, err := r.Register("d", Spec{Train: 50}); err != nil {
		t.Fatal(err)
	}
	st, _ = r.Status("d")
	if st.Spec.Artifact != "" || st.Spec.Train != 50 {
		t.Fatalf("spec after train swap = %+v", st.Spec)
	}
}

func TestLoadFailureIsStickyUntilRegister(t *testing.T) {
	fx := newFixture(t, 300)
	dir := t.TempDir()
	gone := filepath.Join(dir, "gone.csv")
	names, cols := testCols(100)
	writeCSV(t, gone, names, cols)
	r := New(0)
	spec := Spec{Data: gone, FilterColumns: []string{"x", "y"}, Statistic: "count", Artifact: fx.artifactA}
	if _, err := r.Register("d", spec); err != nil {
		t.Fatal(err)
	}
	// Registration validated the file; it vanishes before first use.
	if err := os.Remove(gone); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.Acquire(ctx, "d"); err == nil {
		t.Fatal("expected load failure")
	}
	st, _ := r.Status("d")
	if st.State != "failed" || st.Err == "" {
		t.Fatalf("status after failed load = %+v", st)
	}
	// The failure is sticky: no reload storm.
	if _, err := r.Acquire(ctx, "d"); err == nil {
		t.Fatal("expected sticky load failure")
	}
	// Re-registering clears it.
	writeCSV(t, gone, names, cols)
	if _, err := r.Register("d", spec); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatalf("acquire after re-register: %v", err)
	}
	h.Release()
}

// regionsEqual compares results field-by-field, ignoring elapsed time.
func regionsEqual(a, b *surf.Result) bool {
	if len(a.Regions) != len(b.Regions) {
		return false
	}
	feq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	for i := range a.Regions {
		ra, rb := a.Regions[i], b.Regions[i]
		if ra.Worms != rb.Worms || ra.Verified != rb.Verified || ra.Satisfies != rb.Satisfies ||
			!feq(ra.Estimate, rb.Estimate) || !feq(ra.Score, rb.Score) || !feq(ra.TrueValue, rb.TrueValue) {
			return false
		}
		for j := range ra.Min {
			if ra.Min[j] != rb.Min[j] || ra.Max[j] != rb.Max[j] {
				return false
			}
		}
	}
	return feq(a.ValidParticleFraction, b.ValidParticleFraction) && feq(a.ComplianceRate, b.ComplianceRate)
}

// expectedResult loads spec in a throwaway registry and runs the query
// once — the reference a hot-swap test compares live results against.
func expectedResult(t *testing.T, spec Spec, q surf.Query) *surf.Result {
	t.Helper()
	r := New(0)
	if _, err := r.Register("ref", spec); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(context.Background(), "ref")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	res, err := h.Find(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHotSwapConsistency is the acceptance race: queries hammer an
// entry while its artifact is hot-swapped mid-flight. Every request
// must succeed and see exactly the old or the new model's result —
// never an error, never a torn mix.
func TestHotSwapConsistency(t *testing.T) {
	fx := newFixture(t, 300)
	wantA := expectedResult(t, fx.spec(fx.artifactA), fastQuery)
	wantB := expectedResult(t, fx.spec(fx.artifactB), fastQuery)
	if regionsEqual(wantA, wantB) {
		t.Fatal("fixture artifacts are not distinguishable; the test would prove nothing")
	}

	r := New(0)
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const workers = 8
	const perWorker = 6
	var sawA, sawB, torn, failed int
	var mu sync.Mutex
	var wg sync.WaitGroup
	swap := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/2 {
					close(swap)
				}
				h, err := r.Acquire(ctx, "d")
				if err == nil {
					var res *surf.Result
					res, err = h.Find(ctx, fastQuery)
					version := h.Version()
					h.Release()
					if err == nil {
						mu.Lock()
						switch {
						case regionsEqual(res, wantA):
							sawA++
							if version != 1 {
								torn++
							}
						case regionsEqual(res, wantB):
							sawB++
							if version != 2 {
								torn++
							}
						default:
							torn++
						}
						mu.Unlock()
						continue
					}
				}
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}(w)
	}
	<-swap
	if _, err := r.Register("d", Spec{Artifact: fx.artifactB}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if failed != 0 || torn != 0 {
		t.Fatalf("hot swap: %d failed requests, %d torn results (A=%d B=%d)", failed, torn, sawA, sawB)
	}
	if sawA+sawB != workers*perWorker {
		t.Fatalf("accounted for %d of %d requests", sawA+sawB, workers*perWorker)
	}
	// After the swap settles, new requests see only B.
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	res, err := h.Find(ctx, fastQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !regionsEqual(res, wantB) {
		t.Fatal("post-swap result does not match the new artifact")
	}
}

// TestEvictionRespectsInflight pins capacity at 1 and proves a busy
// entry is never evicted while an idle one is.
func TestEvictionRespectsInflight(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(1)
	if _, err := r.Register("one", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("two", fx.spec(fx.artifactB)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h1, err := r.Acquire(ctx, "one")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Acquire(ctx, "two")
	if err != nil {
		t.Fatal(err)
	}
	// Both are loaded despite capacity 1: "one" is busy, so loading
	// "two" could not evict it.
	st1, _ := r.Status("one")
	st2, _ := r.Status("two")
	if st1.State != "ready" || st2.State != "ready" {
		t.Fatalf("states with both in flight: one=%s two=%s", st1.State, st2.State)
	}
	// The busy entry still serves.
	if _, err := h1.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	h2.Release()
	// "one" is still in flight; releasing "two" must evict the idle
	// LRU entry ("two" itself, as least recently used is whichever is
	// idle) — never "one".
	st1, _ = r.Status("one")
	if st1.State != "ready" {
		t.Fatalf("busy entry evicted: %s", st1.State)
	}
	h1.Release()
	// Now both are idle; capacity 1 keeps exactly one loaded.
	var ready, evicted int
	for _, st := range r.List() {
		switch st.State {
		case "ready":
			ready++
		case "evicted":
			evicted++
		}
	}
	if ready != 1 || evicted != 1 {
		t.Fatalf("after releases: %d ready, %d evicted (want 1/1)", ready, evicted)
	}
	// An evicted entry reloads transparently on next acquire.
	for _, name := range []string{"one", "two"} {
		h, err := r.Acquire(ctx, name)
		if err != nil {
			t.Fatalf("reacquire %s: %v", name, err)
		}
		h.Release()
	}
}

// TestConcurrentColdAcquiresShareOneLoad proves N concurrent acquirers
// of a cold entry produce one load, not N.
func TestConcurrentColdAcquiresShareOneLoad(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 16
	versions := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := r.Acquire(ctx, "d")
			if err != nil {
				errs[i] = err
				return
			}
			versions[i] = h.Version()
			h.Release()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("acquirer %d: %v", i, errs[i])
		}
		if versions[i] != 1 {
			t.Fatalf("acquirer %d saw version %d", i, versions[i])
		}
	}
}

// TestWarmTriggersLoad: Warm starts a cold entry's load without
// waiting; a later Acquire joins it, and the resulting status carries
// the load duration telemetry.
func TestWarmTriggersLoad(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	if err := r.Warm("ghost"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("warm unknown: got %v, want ErrUnknownDataset", err)
	}
	if _, err := r.Register("d", fx.spec(fx.artifactA)); err != nil {
		t.Fatal(err)
	}
	if err := r.Warm("d"); err != nil {
		t.Fatal(err)
	}
	// Warm is idempotent while the load is in flight or after it lands.
	if err := r.Warm("d"); err != nil {
		t.Fatal(err)
	}
	h, err := r.Acquire(context.Background(), "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	st, _ := r.Status("d")
	if st.State != "ready" {
		t.Fatalf("state after warm+acquire = %q", st.State)
	}
	if st.LoadSeconds <= 0 {
		t.Fatalf("LoadSeconds = %v, want > 0", st.LoadSeconds)
	}
}

// TestStatusCacheStats: a ready entry's status reports its result
// cache; sharded entries report the merged-result cache.
func TestStatusCacheStats(t *testing.T) {
	fx := newFixture(t, 300)
	r := New(0)
	spec := fx.spec(fx.artifactA)
	spec.Shards = 2
	if _, err := r.Register("d", spec); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := r.Acquire(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Find(ctx, fastQuery); err != nil {
		t.Fatal(err)
	}
	st, _ := r.Status("d")
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("sharded cache stats = %+v, want 1 hit / 1 miss / 1 entry", st.Cache)
	}
	if st.Cache.Capacity != mergedCacheSize {
		t.Fatalf("sharded cache capacity = %d, want %d", st.Cache.Capacity, mergedCacheSize)
	}
}
