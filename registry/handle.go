package registry

import (
	"context"
	"errors"
	"iter"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	surf "surf"
)

// Handle is a pinned view of one entry's engine set, returned by
// Acquire. It exposes the engine's query surface — Find, FindTopK,
// FindMany, Stream, StreamTopK — executing unsharded entries directly
// and sharded entries through the fan-out/merge/verify path. The
// pinned set is immutable: a hot swap or eviction concurrent with the
// handle's queries installs a new set without touching this one, so
// every query through one handle sees one consistent model and data.
//
// Callers must Release the handle when the request completes (after a
// returned Stream is drained or closed); until then the entry counts
// as busy and is never evicted.
type Handle struct {
	r        *Registry
	e        *entry
	set      *engineSet
	released atomic.Bool
}

// Release unpins the engine set, making the entry evictable again once
// its in-flight count drains. Idempotent.
func (h *Handle) Release() {
	if h.released.CompareAndSwap(false, true) {
		h.r.release(h.e)
	}
}

// Version reports the entry version the handle pinned.
func (h *Handle) Version() int { return h.set.version }

// Engine returns the full-dataset engine (the verification engine of a
// sharded entry).
func (h *Handle) Engine() *surf.Engine { return h.set.engine }

// Sharded reports whether queries fan out across row-range shards.
func (h *Handle) Sharded() bool { return len(h.set.shards) > 0 }

// Find executes a threshold query. Sharded entries run the query on
// every shard in parallel (verification deferred), rank the pooled
// regions by score, merge them through the engine's greedy IoU
// clustering and verify the merged regions against the full dataset,
// so the result's TrueValue, Satisfies and ComplianceRate carry
// exactly their unsharded meaning. Merged results are cached per
// engine set under surf's canonical query fingerprint.
func (h *Handle) Find(ctx context.Context, q surf.Query) (*surf.Result, error) {
	if !h.Sharded() {
		return h.set.engine.FindContext(ctx, q)
	}
	key := q.CacheKey(h.set.engine.Dims())
	if res, ok := h.set.merged.get(key); ok {
		return res, nil
	}
	start := time.Now()
	sq := q
	sq.SkipVerify = true
	results, err := h.fanOut(ctx, func(ctx context.Context, eng *surf.Engine) (*surf.Result, error) {
		return eng.FindContext(ctx, sq)
	})
	if err != nil {
		return nil, err
	}
	out, err := h.mergeFind(ctx, q, results)
	if err != nil {
		return nil, err
	}
	out.ElapsedSeconds = time.Since(start).Seconds()
	h.set.merged.put(key, out)
	return out, nil
}

// FindTopK executes a top-k query, fanning out over shards like Find
// with the pooled candidates ranked by estimate and the merged list
// capped at K. Merged regions are verified (TrueValue) against the
// full dataset; as with the engine, Satisfies stays false for top-k.
func (h *Handle) FindTopK(ctx context.Context, q surf.TopKQuery) (*surf.Result, error) {
	if !h.Sharded() {
		return h.set.engine.FindTopKContext(ctx, q)
	}
	key := q.CacheKey(h.set.engine.Dims())
	if res, ok := h.set.merged.get(key); ok {
		return res, nil
	}
	start := time.Now()
	sq := q
	sq.SkipVerify = true
	results, err := h.fanOut(ctx, func(ctx context.Context, eng *surf.Engine) (*surf.Result, error) {
		return eng.FindTopKContext(ctx, sq)
	})
	if err != nil {
		return nil, err
	}
	out, err := h.mergeTopK(ctx, q, results)
	if err != nil {
		return nil, err
	}
	out.ElapsedSeconds = time.Since(start).Seconds()
	h.set.merged.put(key, out)
	return out, nil
}

// FindMany executes several queries. Unsharded entries delegate to the
// engine's pooled implementation (completion order); sharded entries
// run the queries sequentially — each query already saturates the
// shards — and yield results in input order. A failed query yields a
// nil Result with the error, like the engine's validation failures.
func (h *Handle) FindMany(ctx context.Context, queries []surf.Query) iter.Seq[surf.MultiResult] {
	if !h.Sharded() {
		return h.set.engine.FindMany(ctx, queries)
	}
	return func(yield func(surf.MultiResult) bool) {
		for i, q := range queries {
			var res *surf.Result
			err := ctx.Err()
			if err == nil {
				res, err = h.Find(ctx, q)
			}
			if !yield(surf.MultiResult{Index: i, Result: res, Err: err}) {
				return
			}
		}
	}
}

// Stream starts a threshold query and returns its progressive stream.
// A sharded stream is the union of the shard feeds: every shard's
// EventIteration telemetry and EventRegion incumbents are forwarded as
// they happen (interleaved across shards), and the terminal EventDone
// carries the merged, full-dataset-verified result — identical to what
// Find returns. Validation errors surface synchronously, as with
// Engine.Stream.
func (h *Handle) Stream(ctx context.Context, q surf.Query) (*surf.Stream, error) {
	if !h.Sharded() {
		return h.set.engine.Stream(ctx, q)
	}
	sq := q
	sq.SkipVerify = true
	streams, err := h.startShardStreams(ctx, func(eng *surf.Engine) (*surf.Stream, error) {
		return eng.Stream(ctx, sq)
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	return surf.NewStream(ctx, func(ctx context.Context, emit func(surf.Event) bool) (*surf.Result, error) {
		results, err := forwardShardStreams(ctx, streams, emit)
		if err != nil {
			return nil, err
		}
		out, err := h.mergeFind(ctx, q, results)
		if err != nil {
			return nil, err
		}
		out.ElapsedSeconds = time.Since(start).Seconds()
		return out, nil
	}), nil
}

// StreamTopK is Stream for top-k queries. Shard top-k streams carry
// iteration telemetry only (regions materialize in the end-of-run
// clustering), so the merged stream does too.
func (h *Handle) StreamTopK(ctx context.Context, q surf.TopKQuery) (*surf.Stream, error) {
	if !h.Sharded() {
		return h.set.engine.StreamTopK(ctx, q)
	}
	sq := q
	sq.SkipVerify = true
	streams, err := h.startShardStreams(ctx, func(eng *surf.Engine) (*surf.Stream, error) {
		return eng.StreamTopK(ctx, sq)
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	return surf.NewStream(ctx, func(ctx context.Context, emit func(surf.Event) bool) (*surf.Result, error) {
		results, err := forwardShardStreams(ctx, streams, emit)
		if err != nil {
			return nil, err
		}
		out, err := h.mergeTopK(ctx, q, results)
		if err != nil {
			return nil, err
		}
		out.ElapsedSeconds = time.Since(start).Seconds()
		return out, nil
	}), nil
}

// fanOut runs one query per shard engine in parallel and collects the
// per-shard results in shard order. The first real failure cancels the
// remaining shards; context errors induced by that cancellation are
// not allowed to mask it.
func (h *Handle) fanOut(ctx context.Context, run func(context.Context, *surf.Engine) (*surf.Result, error)) ([]*surf.Result, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*surf.Result, len(h.set.shards))
	errs := make([]error, len(h.set.shards))
	var wg sync.WaitGroup
	for i, eng := range h.set.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = run(sctx, eng)
			if errs[i] != nil {
				cancel()
			}
		}()
	}
	wg.Wait()
	if err := pickShardError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// pickShardError selects the error to report from a fan-out: the first
// non-cancellation failure if any shard had one (cancellations are
// usually just the fan-out tearing the other shards down), else the
// first error.
func pickShardError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
	}
	return first
}

// mergeFind pools per-shard threshold results: concatenate, rank by
// score, greedy-IoU merge capped at the query's MaxRegions, then
// verify the merged regions against the full dataset (unless the
// query skipped verification). ValidParticleFraction averages over
// shards — each shard ran a full swarm.
func (h *Handle) mergeFind(ctx context.Context, q surf.Query, results []*surf.Result) (*surf.Result, error) {
	var all []surf.Region
	vpf := 0.0
	for _, r := range results {
		all = append(all, r.Regions...)
		vpf += r.ValidParticleFraction
	}
	if len(results) > 0 {
		vpf /= float64(len(results))
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	out := &surf.Result{
		Regions:               surf.MergeRegions(all, 0, q.MaxRegions),
		ValidParticleFraction: vpf,
		ComplianceRate:        math.NaN(),
	}
	if !q.SkipVerify {
		rate, err := verifyThreshold(ctx, h.set.engine, out.Regions, q.Threshold, q.Above)
		if err != nil {
			return nil, err
		}
		out.ComplianceRate = rate
	}
	return out, nil
}

// mergeTopK pools per-shard top-k results: concatenate, rank by
// estimate in the query's direction, greedy-IoU merge capped at K,
// then fill TrueValue from the full dataset (Satisfies stays false for
// top-k, as with the engine).
func (h *Handle) mergeTopK(ctx context.Context, q surf.TopKQuery, results []*surf.Result) (*surf.Result, error) {
	var all []surf.Region
	for _, r := range results {
		all = append(all, r.Regions...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if q.Largest {
			return all[i].Estimate > all[j].Estimate
		}
		return all[i].Estimate < all[j].Estimate
	})
	out := &surf.Result{
		Regions:        surf.MergeRegions(all, 0, q.K),
		ComplianceRate: math.NaN(),
	}
	if !q.SkipVerify {
		for i := range out.Regions {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r := &out.Regions[i]
			r.TrueValue, _ = h.set.engine.Evaluate(regionCenter(r), regionHalfSides(r))
			r.Verified = true
		}
	}
	return out, nil
}

// verifyThreshold fills TrueValue/Verified/Satisfies on each region
// from the full-dataset engine and returns the satisfied fraction —
// the same semantics the engine's own verification stage applies
// (strict inequality in the query's direction, NaN never satisfies).
func verifyThreshold(ctx context.Context, eng *surf.Engine, regions []surf.Region, threshold float64, above bool) (float64, error) {
	if len(regions) == 0 {
		return 0, nil
	}
	ok := 0
	for i := range regions {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		r := &regions[i]
		y, _ := eng.Evaluate(regionCenter(r), regionHalfSides(r))
		r.TrueValue = y
		r.Verified = true
		r.Satisfies = !math.IsNaN(y) && ((above && y > threshold) || (!above && y < threshold))
		if r.Satisfies {
			ok++
		}
	}
	return float64(ok) / float64(len(regions)), nil
}

func regionCenter(r *surf.Region) []float64 {
	c := make([]float64, len(r.Min))
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

func regionHalfSides(r *surf.Region) []float64 {
	l := make([]float64, len(r.Min))
	for i := range l {
		l[i] = (r.Max[i] - r.Min[i]) / 2
	}
	return l
}

// startShardStreams opens one stream per shard, synchronously, so
// validation errors return like Engine.Stream's instead of surfacing
// mid-stream. On failure the already-started streams are closed.
func (h *Handle) startShardStreams(ctx context.Context, open func(*surf.Engine) (*surf.Stream, error)) ([]*surf.Stream, error) {
	streams := make([]*surf.Stream, len(h.set.shards))
	for i, eng := range h.set.shards {
		st, err := open(eng)
		if err != nil {
			for _, prev := range streams[:i] {
				prev.Close()
			}
			return nil, err
		}
		streams[i] = st
	}
	return streams, nil
}

// forwardShardStreams drains every shard stream concurrently, fanning
// their events into emit (the merged stream's concurrency-safe emit),
// and returns the per-shard results in shard order. Shard EventDone
// events are swallowed — the merged stream emits its own, carrying the
// merged result.
func forwardShardStreams(ctx context.Context, streams []*surf.Stream, emit func(surf.Event) bool) ([]*surf.Result, error) {
	results := make([]*surf.Result, len(streams))
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i, st := range streams {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = forwardShardStream(ctx, st, emit)
		}()
	}
	wg.Wait()
	if err := pickShardError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// forwardShardStream relays one shard's events until the shard
// finishes (returning its result) or the merged stream's consumer goes
// away (closing the shard stream and returning the cancellation).
func forwardShardStream(ctx context.Context, st *surf.Stream, emit func(surf.Event) bool) (*surf.Result, error) {
	defer st.Close()
	for {
		ev, err := st.Next()
		if err != nil {
			if errors.Is(err, surf.ErrStreamDone) {
				return st.Result()
			}
			return nil, err
		}
		if _, done := ev.(surf.EventDone); done {
			continue // captured via Result at exhaustion
		}
		if !emit(ev) {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			return nil, err
		}
	}
}
