package registry

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	surf "surf"
)

// shardedFixture builds the differential-test setup: a dataset whose
// rows appear twice back-to-back, so a 2-shard split yields two shards
// identical to the base rows, plus one Mean-statistic artifact shared
// by the flat and sharded specs. Mean is duplication-invariant, the
// shards inherit the full dataset's domain, and every engine carries
// the same surrogate bytes — so the sharded merge must reproduce the
// unsharded result exactly (with per-region worm counts doubled).
type shardedFixture struct {
	csv, artifact string
}

func newShardedFixture(t *testing.T) shardedFixture {
	t.Helper()
	dir := t.TempDir()
	fx := shardedFixture{
		csv:      filepath.Join(dir, "dup.csv"),
		artifact: filepath.Join(dir, "mean.surf"),
	}
	names, cols := testCols(240)
	dup := make([][]float64, len(cols))
	for j, c := range cols {
		dup[j] = append(append(make([]float64, 0, 2*len(c)), c...), c...)
	}
	writeCSV(t, fx.csv, names, dup)

	f, err := os.Open(fx.csv)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := surf.ReadCSVDataset(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := surf.Open(ds, surf.Config{
		FilterColumns: []string{"x", "y"}, Statistic: surf.Mean, TargetColumn: "v",
	})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := eng.GenerateWorkload(150, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.TrainSurrogate(wl, surf.TrainOptions{Trees: 10}); err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(fx.artifact)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := eng.SaveSurrogate(out); err != nil {
		t.Fatal(err)
	}
	return fx
}

func (fx shardedFixture) spec(shards int) Spec {
	return Spec{
		Data: fx.csv, FilterColumns: []string{"x", "y"},
		Statistic: "mean", TargetColumn: "v",
		Artifact: fx.artifact, Shards: shards,
	}
}

// shardedHandles registers flat and 2-shard entries over the fixture
// and acquires both.
func shardedHandles(t *testing.T, fx shardedFixture) (flat, sharded *Handle) {
	t.Helper()
	r := New(0)
	if _, err := r.Register("flat", fx.spec(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("sharded", fx.spec(2)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	flat, err := r.Acquire(ctx, "flat")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(flat.Release)
	sharded, err = r.Acquire(ctx, "sharded")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sharded.Release)
	if flat.Sharded() || !sharded.Sharded() {
		t.Fatalf("Sharded() flat=%v sharded=%v", flat.Sharded(), sharded.Sharded())
	}
	return flat, sharded
}

// meanQuery's threshold sits below the surrogate's peak prediction
// (~0.48 over this fixture) so the fast GSO budget reliably mines a
// few distinct regions.
var meanQuery = surf.Query{
	Threshold: 0.3, Above: true, Seed: 3,
	Glowworms: 16, Iterations: 12, MaxRegions: 4,
}

// assertShardedMatchesFlat checks the differential contract: identical
// regions and run-level figures, with the sharded worm counts summed
// across the two identical shards.
func assertShardedMatchesFlat(t *testing.T, flat, sharded *surf.Result) {
	t.Helper()
	if len(flat.Regions) == 0 {
		t.Fatal("flat run mined no regions; the differential would be vacuous")
	}
	if len(sharded.Regions) != len(flat.Regions) {
		t.Fatalf("sharded mined %d regions, flat %d", len(sharded.Regions), len(flat.Regions))
	}
	feq := func(a, b float64) bool { return a == b || (math.IsNaN(a) && math.IsNaN(b)) }
	for i := range flat.Regions {
		fr, sr := flat.Regions[i], sharded.Regions[i]
		for j := range fr.Min {
			if fr.Min[j] != sr.Min[j] || fr.Max[j] != sr.Max[j] {
				t.Errorf("region %d bounds differ: flat [%v,%v] sharded [%v,%v]", i, fr.Min, fr.Max, sr.Min, sr.Max)
				break
			}
		}
		if !feq(fr.Estimate, sr.Estimate) || !feq(fr.Score, sr.Score) {
			t.Errorf("region %d estimate/score: flat %g/%g sharded %g/%g", i, fr.Estimate, fr.Score, sr.Estimate, sr.Score)
		}
		if sr.Worms != 2*fr.Worms {
			t.Errorf("region %d worms: flat %d sharded %d (want doubled)", i, fr.Worms, sr.Worms)
		}
		if fr.Verified != sr.Verified || fr.Satisfies != sr.Satisfies || !feq(fr.TrueValue, sr.TrueValue) {
			t.Errorf("region %d verification: flat {%v %v %g} sharded {%v %v %g}",
				i, fr.Verified, fr.Satisfies, fr.TrueValue, sr.Verified, sr.Satisfies, sr.TrueValue)
		}
	}
	if !feq(flat.ValidParticleFraction, sharded.ValidParticleFraction) {
		t.Errorf("valid particle fraction: flat %g sharded %g", flat.ValidParticleFraction, sharded.ValidParticleFraction)
	}
	if !feq(flat.ComplianceRate, sharded.ComplianceRate) {
		t.Errorf("compliance: flat %g sharded %g", flat.ComplianceRate, sharded.ComplianceRate)
	}
}

// TestShardedFindDifferential is the acceptance test: a 2-shard Find
// over the duplicated dataset reproduces the single-engine result.
func TestShardedFindDifferential(t *testing.T) {
	fx := newShardedFixture(t)
	flat, sharded := shardedHandles(t, fx)
	ctx := context.Background()
	fres, err := flat.Find(ctx, meanQuery)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sharded.Find(ctx, meanQuery)
	if err != nil {
		t.Fatal(err)
	}
	assertShardedMatchesFlat(t, fres, sres)

	t.Run("cluster extents", func(t *testing.T) {
		q := meanQuery
		q.ClusterExtents = true
		fres, err := flat.Find(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := sharded.Find(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(fres.Regions) == 0 || len(sres.Regions) != len(fres.Regions) {
			t.Fatalf("cluster extents: flat %d regions, sharded %d", len(fres.Regions), len(sres.Regions))
		}
	})

	t.Run("skip verify", func(t *testing.T) {
		q := meanQuery
		q.SkipVerify = true
		sres, err := sharded.Find(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(sres.ComplianceRate) {
			t.Errorf("skip-verify compliance = %g, want NaN", sres.ComplianceRate)
		}
		for i, r := range sres.Regions {
			if r.Verified {
				t.Errorf("region %d verified despite skip_verify", i)
			}
		}
	})
}

func TestShardedTopKDifferential(t *testing.T) {
	fx := newShardedFixture(t)
	flat, sharded := shardedHandles(t, fx)
	ctx := context.Background()
	q := surf.TopKQuery{K: 3, Largest: true, Seed: 3, Glowworms: 16, Iterations: 12}
	fres, err := flat.FindTopK(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sharded.FindTopK(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(fres.Regions) == 0 {
		t.Fatal("flat top-k mined no regions")
	}
	if len(sres.Regions) != len(fres.Regions) {
		t.Fatalf("sharded top-k %d regions, flat %d", len(sres.Regions), len(fres.Regions))
	}
	for i := range fres.Regions {
		fr, sr := fres.Regions[i], sres.Regions[i]
		if fr.Estimate != sr.Estimate || fr.TrueValue != sr.TrueValue || !sr.Verified {
			t.Errorf("top-k region %d: flat {%g %g} sharded {%g %g verified=%v}",
				i, fr.Estimate, fr.TrueValue, sr.Estimate, sr.TrueValue, sr.Verified)
		}
		if sr.Worms != 2*fr.Worms {
			t.Errorf("top-k region %d worms: flat %d sharded %d", i, fr.Worms, sr.Worms)
		}
		if sr.Satisfies {
			t.Errorf("top-k region %d: Satisfies must stay false", i)
		}
	}
}

// TestShardedStreamMatchesFind drains a sharded stream and checks the
// terminal result equals the batch path, with live telemetry flowing
// from both shards.
func TestShardedStreamMatchesFind(t *testing.T) {
	fx := newShardedFixture(t)
	_, sharded := shardedHandles(t, fx)
	ctx := context.Background()
	want, err := sharded.Find(ctx, meanQuery)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sharded.Stream(ctx, meanQuery)
	if err != nil {
		t.Fatal(err)
	}
	var iterations, done int
	var final *surf.Result
	for {
		ev, err := st.Next()
		if errors.Is(err, surf.ErrStreamDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch d := ev.(type) {
		case surf.EventIteration:
			iterations++
		case surf.EventDone:
			done++
			final = d.Result
		}
	}
	// Both shards run the query's iteration budget; the merged feed
	// carries both.
	if iterations <= meanQuery.Iterations {
		t.Errorf("merged stream delivered %d iteration events for 2 shards of %d iterations",
			iterations, meanQuery.Iterations)
	}
	if done != 1 || final == nil {
		t.Fatalf("done events = %d", done)
	}
	if !regionsEqual(want, final) {
		t.Fatal("streamed result differs from batch Find")
	}

	t.Run("validation error is synchronous", func(t *testing.T) {
		bad := meanQuery
		bad.MaxRegions = -1
		if _, err := sharded.Stream(ctx, bad); !errors.Is(err, surf.ErrBadQuery) {
			t.Fatalf("got %v, want ErrBadQuery", err)
		}
	})

	t.Run("early close winds down", func(t *testing.T) {
		long := meanQuery
		long.Iterations = 2000
		st, err := sharded.Stream(ctx, long)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := st.Next(); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
		if _, err := st.Result(); err == nil {
			t.Error("closed stream reported no error")
		}
	})
}

func TestShardedStreamTopK(t *testing.T) {
	fx := newShardedFixture(t)
	_, sharded := shardedHandles(t, fx)
	ctx := context.Background()
	q := surf.TopKQuery{K: 2, Largest: true, Seed: 3, Glowworms: 16, Iterations: 10}
	want, err := sharded.FindTopK(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sharded.StreamTopK(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !regionsEqual(want, res) {
		t.Fatal("streamed top-k differs from batch FindTopK")
	}
}

// TestShardedFindMany checks input-order delivery and per-query error
// isolation on the sequential sharded path.
func TestShardedFindMany(t *testing.T) {
	fx := newShardedFixture(t)
	_, sharded := shardedHandles(t, fx)
	ctx := context.Background()
	bad := meanQuery
	bad.MaxRegions = -2
	queries := []surf.Query{meanQuery, bad, meanQuery}
	var got []surf.MultiResult
	for mr := range sharded.FindMany(ctx, queries) {
		got = append(got, mr)
	}
	if len(got) != 3 {
		t.Fatalf("%d results for 3 queries", len(got))
	}
	for i, mr := range got {
		if mr.Index != i {
			t.Fatalf("result %d has index %d; sharded findmany must preserve input order", i, mr.Index)
		}
	}
	if got[1].Err == nil {
		t.Error("invalid query reported no error")
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Errorf("valid queries failed: %v / %v", got[0].Err, got[2].Err)
	}
	if !regionsEqual(got[0].Result, got[2].Result) {
		t.Error("identical queries returned different results")
	}
}

// TestShardedMergedCache proves repeat queries hit the per-set cache
// and that cached results are isolated from caller mutation.
func TestShardedMergedCache(t *testing.T) {
	fx := newShardedFixture(t)
	_, sharded := shardedHandles(t, fx)
	ctx := context.Background()
	first, err := sharded.Find(ctx, meanQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Regions) == 0 {
		t.Fatal("no regions")
	}
	first.Regions[0].Min[0] = -999 // must not poison the cache
	second, err := sharded.Find(ctx, meanQuery)
	if err != nil {
		t.Fatal(err)
	}
	if second.Regions[0].Min[0] == -999 {
		t.Fatal("caller mutation leaked into the merged-result cache")
	}
}
