// Fixture for ctxflow: the PR 5 dropped-ctx regression shapes, the
// sanctioned thin-wrapper idiom, and the //lint:allow escape.
package ctxflow

import "context"

type Engine struct{}

func (e *Engine) FitContext(ctx context.Context, iters int) error {
	return ctx.Err()
}

// Fit is the documented public-API idiom: a named single-statement
// wrapper may mint the background root.
func (e *Engine) Fit(iters int) error { return e.FitContext(context.Background(), iters) }

// Train is the motivating regression: a context-taking entry point
// that validates ctx and then re-roots, silently dropping
// cancellation for the whole run.
func (e *Engine) Train(ctx context.Context, iters int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.FitContext(context.Background(), iters) // want `context\.Background\(\) drops the caller's context`
}

// Retrain holds a ctx but calls the context-free variant of a method
// whose Context form exists.
func (e *Engine) Retrain(ctx context.Context, iters int) error {
	return e.Fit(iters) // want `Fit ignores the in-scope context; call FitContext and pass it`
}

func Run() {}

func RunContext(ctx context.Context) { _ = ctx }

// kick exercises the package-level variant lookup.
func kick(ctx context.Context) {
	Run() // want `Run ignores the in-scope context; call RunContext and pass it`
}

// viaClosure proves closures see their parents' ctx.
func viaClosure(ctx context.Context) func() {
	return func() {
		Run() // want `Run ignores the in-scope context; call RunContext and pass it`
	}
}

// free holds no context, so the context-free variant is the right
// call.
func free() {
	Run()
}

// todo: context.TODO is no better than Background.
func todo(ctx context.Context) {
	_ = ctx
	RunContext(context.TODO()) // want `context\.TODO\(\) drops the caller's context`
}

// detach is the sanctioned escape: a justified allow suppresses the
// diagnostic on the line below.
func detach(ctx context.Context) {
	_ = ctx
	//lint:allow ctxflow: fixture detach — this work is shared and must outlive one caller
	_ = context.Background()
}

// stale: an allow that suppresses nothing is itself a finding (the
// driver attributes it to lintallow).
func stale(ctx context.Context) {
	_ = ctx
	/* want `//lint:allow ctxflow suppresses no diagnostic; delete the stale escape` */ //lint:allow ctxflow: nothing here detaches
}
