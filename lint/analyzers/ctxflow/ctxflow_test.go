package ctxflow_test

import (
	"testing"

	"surf/lint/analysis/analysistest"
	"surf/lint/analyzers/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctxflow")
}
