// Package ctxflow enforces that contexts flow: a function holding a
// context must pass it on, never mint a fresh background one, and
// never call the context-free variant of an API whose *Context form
// exists.
//
// Motivating bug (PR 5): TrainSurrogateContext validated its ctx and
// then ran the whole boosting loop through a context-free internal
// fit — cancellation was silently dropped and training ran to
// completion after every caller had gone away.
//
// Two deliberate escapes exist in this tree and carry
// //lint:allow ctxflow comments: the registry's load detach (a load
// is shared by every waiter, so one caller's disconnect must not
// abort it) and server shutdown (the drain deadline must outlive the
// cancelled serve context).
package ctxflow

import (
	"go/ast"
	"go/types"

	"surf/lint/analysis"
	"surf/lint/internal/astq"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "contexts must flow into every cancellable call: no context.Background()/TODO() outside " +
		"single-statement wrappers and package main, and no calling F where FContext exists " +
		"while a ctx is in scope (the PR 5 dropped-ctx training bug)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The documented public-API idiom — "context-free names are thin
	// context.Background() wrappers" (doc.go) — and process entry
	// points are the two places a fresh root context is legitimate.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		astq.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if astq.IsPkgFunc(fn, "context", "Background") || astq.IsPkgFunc(fn, "context", "TODO") {
				if !inThinWrapper(stack) {
					pass.Reportf(call.Pos(),
						"context.%s() drops the caller's context; thread a ctx parameter through, or annotate a deliberate detach with //lint:allow ctxflow: <reason>",
						fn.Name())
				}
				return true
			}
			checkContextVariant(pass, call, fn, stack)
			return true
		})
	}
	return nil
}

// checkContextVariant flags calls to F when a context is in scope and
// F's declaring scope also offers FContext taking a context.
func checkContextVariant(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, stack []ast.Node) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || astq.HasContextParam(sig) {
		return
	}
	if !enclosingHasContext(pass, stack) {
		return
	}
	variant := fn.Name() + "Context"
	var alt types.Object
	if recv := sig.Recv(); recv != nil {
		alt, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), variant)
	} else if fn.Pkg() != nil {
		alt = fn.Pkg().Scope().Lookup(variant)
	}
	altFn, ok := alt.(*types.Func)
	if !ok {
		return
	}
	altSig, ok := altFn.Type().(*types.Signature)
	if !ok || altSig.Params().Len() == 0 || !astq.IsContextType(altSig.Params().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "%s ignores the in-scope context; call %s and pass it", fn.Name(), variant)
}

// inThinWrapper reports whether the innermost enclosing function is a
// named single-statement function — the sanctioned
// `func F(...) { return e.FContext(context.Background(), ...) }`
// wrapper shape — with no function literal in between.
func inThinWrapper(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.FuncDecl:
			return fn.Body != nil && len(fn.Body.List) == 1
		}
	}
	return false
}

// enclosingHasContext reports whether any enclosing function
// declaration or literal takes a context.Context parameter (closures
// see their parents' ctx).
func enclosingHasContext(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var sig *types.Signature
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			sig, _ = pass.TypesInfo.Types[fn].Type.(*types.Signature)
		case *ast.FuncDecl:
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				sig, _ = obj.Type().(*types.Signature)
			}
		default:
			continue
		}
		if sig != nil && astq.HasContextParam(sig) {
			return true
		}
	}
	return false
}
