// Package obslabel guards /metrics cardinality: every label key on an
// obs.Registry instrument must be a compile-time constant, label
// lists must be alternating key/value pairs, and label values must
// not be computed or derived from request data. A single
// request-derived label value (a URL path, a client-sent header)
// mints one series per distinct request and grows the exposition —
// and its scrape cost — without bound.
//
// Metric names and help strings must be constants too: a dynamic
// family name defeats pre-registration and dashboard stability.
//
// Scrape-time Collect callbacks get the same key discipline; their
// values may be dynamic (per-dataset names are the sanctioned case —
// bounded by the registry's capacity, not by traffic).
package obslabel

import (
	"go/ast"
	"go/constant"
	"go/types"

	"surf/lint/analysis"
	"surf/lint/internal/astq"
)

// Analyzer is the obslabel check.
var Analyzer = &analysis.Analyzer{
	Name: "obslabel",
	Doc: "obs metric label keys must be compile-time constants and label values bounded — " +
		"request-derived strings explode /metrics cardinality",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := registryMethod(pass, call)
			if !ok {
				return true
			}
			switch name {
			case "Counter", "Gauge":
				checkNameHelp(pass, call)
				checkLabels(pass, call, call.Args[2:], false)
			case "Histogram":
				checkNameHelp(pass, call)
				if len(call.Args) > 3 {
					checkLabels(pass, call, call.Args[3:], false)
				}
			case "Collect":
				checkNameHelp(pass, call)
				checkCollectCallback(pass, call)
			}
			return true
		})
	}
	return nil
}

// registryMethod matches calls to the obs.Registry instrument
// constructors, by receiver type so wrappers forwarding `labels
// ...string` stay out of scope.
func registryMethod(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram", "Collect":
	default:
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !astq.IsNamedType(sig.Recv().Type(), "obs", "Registry") {
		return "", false
	}
	if len(call.Args) < 2 {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkNameHelp requires constant metric name and help strings.
func checkNameHelp(pass *analysis.Pass, call *ast.CallExpr) {
	for i, what := range []string{"metric name", "help string"} {
		if !isConstString(pass, call.Args[i]) {
			pass.Reportf(call.Args[i].Pos(),
				"%s must be a compile-time constant; dynamic metric families defeat pre-registration", what)
		}
	}
}

// checkCollectCallback applies label checking to emit(...) calls
// inside the Collect callback literal, keys only — scrape-time values
// are bounded by registration, not by traffic.
func checkCollectCallback(pass *analysis.Pass, call *ast.CallExpr) {
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok || len(lit.Type.Params.List) == 0 || len(lit.Type.Params.List[0].Names) == 0 {
		return
	}
	emit := pass.TypesInfo.Defs[lit.Type.Params.List[0].Names[0]]
	if emit == nil {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ec, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(ec.Fun).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != emit {
			return true
		}
		if len(ec.Args) > 1 {
			checkLabels(pass, ec, ec.Args[1:], true)
		}
		return true
	})
}

// checkLabels validates one alternating key/value label list.
// Scrape-time lists (valuesMayVary) skip the bounded-value check.
func checkLabels(pass *analysis.Pass, call *ast.CallExpr, labels []ast.Expr, valuesMayVary bool) {
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis,
			"label slice spread defeats static label checking; pass explicit key/value pairs")
		return
	}
	if len(labels)%2 != 0 {
		pass.Reportf(call.Pos(),
			"odd label list: labels must be alternating key/value pairs")
		return
	}
	for i := 0; i < len(labels); i += 2 {
		if !isConstString(pass, labels[i]) {
			pass.Reportf(labels[i].Pos(),
				"metric label key must be a compile-time constant string")
		}
		if !valuesMayVary {
			checkBoundedValue(pass, labels[i+1])
		}
	}
}

// checkBoundedValue rejects label values that are computed (any call
// — Sprintf, strconv, a conversion) or read off request state
// (http.Request, url.URL, url.Values, http.Header): both mint series
// per request instead of per registration.
func checkBoundedValue(pass *analysis.Pass, value ast.Expr) {
	ast.Inspect(value, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pass.Reportf(n.Pos(),
				"computed metric label value: compute label sets at registration, not per request")
			return false
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && isRequestType(tv.Type) {
				pass.Reportf(n.Pos(),
					"metric label value derives from request data; unbounded label cardinality explodes /metrics")
				return false
			}
		}
		return true
	})
}

func isRequestType(t types.Type) bool {
	return astq.IsNamedType(t, "http", "Request") ||
		astq.IsNamedType(t, "http", "Header") ||
		astq.IsNamedType(t, "url", "URL") ||
		astq.IsNamedType(t, "url", "Values")
}

func isConstString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.String
}
