package obslabel_test

import (
	"testing"

	"surf/lint/analysis/analysistest"
	"surf/lint/analyzers/obslabel"
)

func TestObslabel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obslabel.Analyzer, "obslabel")
}
