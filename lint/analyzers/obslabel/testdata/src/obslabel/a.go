// Fixture for obslabel: constant keys and bounded values pass;
// dynamic names, dynamic keys, request-derived or computed values,
// odd lists and spreads are the cardinality regressions.
package obslabel

import (
	"fmt"
	"net/http"

	"obs"
)

const routeLabel = "route"

func good(r *obs.Registry) {
	r.Counter("surf_http_requests_total", "Requests served.", "route", "/v1/find", "code", "2xx")
	r.Counter("surf_hits_total", "Cache hits.", routeLabel, "/v1/stream")
	r.Histogram("surf_latency_seconds", "Latency.", []float64{0.01, 0.1}, "route", "/v1/find")
	r.Gauge("surf_inflight", "In-flight requests.")
	r.Collect("surf_dataset_state", "Lifecycle state.", obs.TypeGauge,
		func(emit func(v float64, labels ...string)) {
			// Scrape-time values are bounded by registration, so a
			// dynamic dataset name is the sanctioned case.
			emit(1, "dataset", datasetName())
		})
}

func datasetName() string { return "taxi" }

func badName(r *obs.Registry, suffix string) {
	r.Counter("surf_"+suffix, "Dynamic family.", "route", "/x") // want `metric name must be a compile-time constant`
}

func badKey(r *obs.Registry, key string) {
	r.Counter("surf_a_total", "A.", key, "v") // want `metric label key must be a compile-time constant string`
}

// badRequestValue is the motivating regression: one series per
// distinct URL path, minted by traffic.
func badRequestValue(r *obs.Registry, req *http.Request) {
	r.Counter("surf_b_total", "B.", "path", req.URL.Path) // want `metric label value derives from request data`
}

func badComputed(r *obs.Registry, shard int) {
	r.Gauge("surf_c", "C.", "shard", fmt.Sprintf("%d", shard)) // want `computed metric label value`
}

func badOdd(r *obs.Registry) {
	r.Counter("surf_d_total", "D.", "route") // want `odd label list: labels must be alternating key/value pairs`
}

func badSpread(r *obs.Registry, labels []string) {
	r.Counter("surf_e_total", "E.", labels...) // want `label slice spread defeats static label checking`
}

func badCollectKey(r *obs.Registry, k string) {
	r.Collect("surf_f", "F.", obs.TypeGauge,
		func(emit func(v float64, labels ...string)) {
			emit(1, k, "v") // want `metric label key must be a compile-time constant string`
		})
}
