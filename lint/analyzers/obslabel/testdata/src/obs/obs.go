// Package obs is a fixture stand-in for the real internal/obs
// registry: the same instrument-constructor shapes, no behavior. The
// analyzer matches by package and type name, so this double keeps the
// fixture self-contained.
package obs

type Type int

const (
	TypeCounter Type = iota
	TypeGauge
)

type Registry struct{}

type Counter struct{}

func (c *Counter) Add(d float64) {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

func (r *Registry) Counter(name, help string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return &Histogram{}
}

func (r *Registry) Collect(name, help string, typ Type, fn func(emit func(v float64, labels ...string))) {
}
