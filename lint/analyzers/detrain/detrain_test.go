package detrain_test

import (
	"testing"

	"surf/lint/analysis/analysistest"
	"surf/lint/analyzers/detrain"
)

func TestDetrain(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrain.Analyzer, "detrain")
}
