// Fixture for detrain, function-level scope: this file has no header
// directive, so only the marked function is checked.
package detrain

// freeFloat is outside any deterministic scope; the reduction is
// allowed to be order-dependent here.
func freeFloat(m map[int]float64) float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

// markedFunc carries the directive in its doc comment, which scopes
// the bans to this function only.
//
//surf:deterministic
func markedFunc(m map[int]float64) float64 {
	var t float64
	for _, v := range m {
		t += v // want `map iteration order is randomized: a floating-point reduction`
	}
	return t
}
