// Fixture for detrain, file-level scope: the header directive puts
// every function here under the deterministic-training bans.
//
//surf:deterministic (fixture: whole-file deterministic scope)
package detrain

import (
	"math/rand/v2"
	"sort"
	"time"
)

// sumLoss is the motivating regression: a floating-point reduction
// over map iteration order breaks the byte-identical-for-any-Workers
// gate, because float addition does not commute in rounding.
func sumLoss(losses map[int]float64) float64 {
	var total float64
	for _, l := range losses {
		total += l // want `map iteration order is randomized: a floating-point reduction`
	}
	return total
}

// sumSorted is the sanctioned rewrite: collect keys (append-to-self
// is order-insensitive), sort, then reduce in key order.
func sumSorted(losses map[int]float64) float64 {
	keys := make([]int, 0, len(losses))
	for k := range losses {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += losses[k]
	}
	return total
}

// count: integer counting commutes; iteration order cannot show.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// invert writes map keys into positions picked by iteration order.
func invert(m map[string]int) []string {
	out := make([]string, 0, len(m))
	i := 0
	for k := range m {
		out = append(out, "")
		out[i] = k // want `map iteration order is randomized: an index assignment into outer state`
		i++
	}
	return out
}

// last leaks whichever key iteration happened to visit last.
func last(m map[string]int) string {
	var picked string
	for k := range m {
		picked = k // want `map iteration order is randomized: an overwrite of outer state`
	}
	return picked
}

// jitter draws from the nondeterministically seeded global generator.
func jitter() float64 {
	return rand.Float64() // want `global math/rand Float64\(\) in deterministic code`
}

// seeded is the sanctioned form: constructors build a seeded
// generator, and methods on it are deterministic.
func seeded() float64 {
	rng := rand.New(rand.NewPCG(1, 2))
	return rng.Float64()
}

// stamp feeds wall-clock into a result.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now\(\) in deterministic code feeds wall-clock into results`
}
