// Package detrain polices the deterministic-training guarantee:
// inside code marked //surf:deterministic (the internal/gbt training
// pipeline above all), results must be byte-identical for any Workers
// count and across runs. Three nondeterminism sources are banned
// there:
//
//   - ranging over a map while accumulating floating-point state or
//     assigning into outer containers — map iteration order is
//     randomized, and float addition does not commute in rounding
//     (collect the keys, sort them, then iterate);
//   - the global math/rand / math/rand/v2 generators, which are
//     seeded nondeterministically (use a seeded *rand.Rand);
//   - time.Now / time.Since / time.Until feeding results.
//
// The directive is read from a file's header comments (whole file in
// scope) or a function's doc comment (that function only).
//
// Motivating invariant: PR 5's parallel trainer is CI-gated on the
// Workers=1 and Workers=NumCPU models being byte-identical; a single
// map-order float reduction silently breaks that gate.
package detrain

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"surf/lint/analysis"
	"surf/lint/internal/astq"
)

// Analyzer is the detrain check.
var Analyzer = &analysis.Analyzer{
	Name: "detrain",
	Doc: "code marked //surf:deterministic must stay reproducible: no map-iteration-order-sensitive " +
		"reductions, no global math/rand, no time.Now feeding results (the byte-identical-for-any-Workers gate)",
	Run: run,
}

const directive = "//surf:deterministic"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if fileMarked(file) {
			checkScope(pass, file)
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && docMarked(fd.Doc) {
				checkScope(pass, fd)
			}
		}
	}
	return nil
}

// fileMarked reports whether the file carries the directive in a
// comment positioned before the package clause (its header).
func fileMarked(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() > file.Package {
			break
		}
		if docMarked(cg) {
			return true
		}
	}
	return false
}

func docMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// checkScope applies the three bans to every node under root.
func checkScope(pass *analysis.Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

// checkCall bans the global rand generators and wall-clock reads.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := astq.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on a seeded *rand.Rand are the sanctioned form
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Constructors build seeded generators; everything else draws
		// from the nondeterministically seeded global.
		switch fn.Name() {
		case "New", "NewPCG", "NewChaCha8", "NewSource", "NewZipf":
		default:
			pass.Reportf(call.Pos(),
				"global math/rand %s() in deterministic code is seeded nondeterministically; draw from a seeded *rand.Rand", fn.Name())
		}
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s() in deterministic code feeds wall-clock into results; pass timestamps in from the caller", fn.Name())
		}
	}
}

// checkMapRange flags a range over a map whose body performs an
// order-sensitive write to state declared outside the loop: a
// floating-point compound assignment, an index assignment into an
// outer container, or a plain overwrite. Order-insensitive writes —
// integer counting, append-to-self for the collect-keys-then-sort
// idiom — pass.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reported := false
	report := func(pos token.Pos, what string) {
		if !reported {
			pass.Reportf(pos,
				"map iteration order is randomized: %s inside this range makes the result order-dependent; iterate a sorted key slice instead", what)
			reported = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			root := astq.RootIdent(lhs)
			if root == nil || root.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Uses[root]
			if obj == nil {
				obj = pass.TypesInfo.Defs[root]
			}
			if obj == nil || insideRange(obj.Pos(), rng) {
				continue
			}
			switch {
			case as.Tok == token.ASSIGN || as.Tok == token.DEFINE:
				if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
					report(lhs.Pos(), "an index assignment into outer state")
				} else if !isSelfAppend(pass, as, i, lhs) {
					report(lhs.Pos(), "an overwrite of outer state")
				}
			default: // compound assignment: only float accumulation is order-sensitive
				if isFloat(pass.TypesInfo.Types[lhs].Type) {
					report(lhs.Pos(), "a floating-point reduction")
				}
			}
		}
		return true
	})
}

func insideRange(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}

// isSelfAppend recognizes `x = append(x, …)`, the collect-then-sort
// idiom's accumulation step.
func isSelfAppend(pass *analysis.Pass, as *ast.AssignStmt, i int, lhs ast.Expr) bool {
	if len(as.Rhs) != len(as.Lhs) {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	lroot, aroot := astq.RootIdent(lhs), astq.RootIdent(call.Args[0])
	return lroot != nil && aroot != nil &&
		pass.TypesInfo.ObjectOf(lroot) == pass.TypesInfo.ObjectOf(aroot)
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
