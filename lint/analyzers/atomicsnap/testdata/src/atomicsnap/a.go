// Fixture for atomicsnap: the snapshot-copy regression (`sn :=
// e.surrogate` compiles fine and races silently) plus the full
// sanctioned method set.
package atomicsnap

import "sync/atomic"

type snapshot struct{ gen uint64 }

type Engine struct {
	surrogate atomic.Pointer[snapshot]
	gen       atomic.Uint64
	counts    []atomic.Uint64
}

func good(e *Engine) {
	_ = e.surrogate.Load()
	e.surrogate.Store(&snapshot{})
	old := e.surrogate.Swap(&snapshot{})
	_ = e.surrogate.CompareAndSwap(old, &snapshot{})
	e.gen.Add(1)
	e.counts[0].Add(1) // indexed receivers go through the method set too
	swap := e.surrogate.Swap
	swap(&snapshot{}) // a bound method value still operates atomically
}

func bad(e *Engine) {
	sn := e.surrogate // want `sync/atomic value used outside its atomic method set`
	_ = sn            // want `sync/atomic value used outside its atomic method set`
	p := &e.surrogate // want `sync/atomic value used outside its atomic method set`
	_ = p.Load()
	e.gen = atomic.Uint64{} // want `sync/atomic value used outside its atomic method set`
}
