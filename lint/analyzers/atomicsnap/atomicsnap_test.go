package atomicsnap_test

import (
	"testing"

	"surf/lint/analysis/analysistest"
	"surf/lint/analyzers/atomicsnap"
)

func TestAtomicsnap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicsnap.Analyzer, "atomicsnap")
}
