// Package atomicsnap enforces the snapshot-swap discipline: a value
// of a sync/atomic type (atomic.Pointer[T], atomic.Uint64, …) may
// only be touched through its atomic method set — Load, Store, Swap,
// CompareAndSwap, Add, And, Or. Copying one, overwriting one by
// assignment, or taking its address aliases or tears the very state
// the atomic wrapper exists to protect.
//
// Motivating invariant: the engine's surrogate snapshot and the
// registry's engine sets move only through atomic pointers, so a
// query pinned to a snapshot can never observe a half-swapped model.
// A direct read of the field (`sn := e.surrogate`) compiles fine and
// races silently.
package atomicsnap

import (
	"go/ast"
	"go/types"

	"surf/lint/analysis"
	"surf/lint/internal/astq"
)

// Analyzer is the atomicsnap check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsnap",
	Doc: "sync/atomic values (snapshot fields above all) may only be accessed through " +
		"Load/Store/Swap/CompareAndSwap/Add — never copied, reassigned or aliased",
	Run: run,
}

// atomicTypes are the sync/atomic wrapper types the discipline covers.
var atomicTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// atomicMethods are the only legitimate operations on such a value.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
	"Add": true, "And": true, "Or": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		astq.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			default:
				return true
			}
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || !tv.IsValue() {
				return true
			}
			if !isAtomicType(tv.Type) {
				return true
			}
			if isMethodAccess(e, stack) {
				return true
			}
			pass.Reportf(e.Pos(),
				"sync/atomic value used outside its atomic method set (Load/Store/Swap/CompareAndSwap/Add); copying, reassigning or aliasing it tears the state the atomic protects")
			return true
		})
	}
	return nil
}

// isAtomicType reports whether t is one of the sync/atomic wrapper
// types (resolving generic instantiation, e.g. atomic.Pointer[T]).
func isAtomicType(t types.Type) bool {
	n := astq.NamedOrigin(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic" && atomicTypes[n.Obj().Name()]
}

// isMethodAccess reports whether e is exactly the receiver of an
// atomic method selection — x.f.Load(…), or a bound method value
// x.f.Load, both of which operate through the atomic API rather than
// on the raw value.
func isMethodAccess(e ast.Expr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	return ok && sel.X == e && atomicMethods[sel.Sel.Name]
}
