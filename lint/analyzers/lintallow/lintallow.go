// Package lintallow enforces the escape-hatch grammar itself. The
// only sanctioned suppression form is
//
//	//lint:allow <analyzer>: <reason>
//
// — one known analyzer name, a colon, a non-empty reason. Bare allows
// ("//lint:allow ctxflow") are rejected: an escape without a recorded
// justification is indistinguishable from a silenced bug. Allows
// naming analyzers that do not exist are rejected too — they
// suppress nothing and read as if they did. (Stale allows — well
// formed but matching no diagnostic — are reported by the driver,
// which alone sees every analyzer's output.)
package lintallow

import (
	"surf/lint/analysis"
)

// New builds the lintallow analyzer over the set of known analyzer
// names (lintallow itself included, so the set is closed).
func New(known []string) *analysis.Analyzer {
	names := make(map[string]bool, len(known)+1)
	names["lintallow"] = true
	for _, n := range known {
		names[n] = true
	}
	return &analysis.Analyzer{
		Name: "lintallow",
		Doc: "//lint:allow escapes must name a known analyzer and carry a reason " +
			"(//lint:allow <analyzer>: <reason>); bare or unknown allows are silenced bugs",
		Run: func(pass *analysis.Pass) error {
			for _, file := range pass.Files {
				for _, a := range analysis.ParseAllows(pass.Fset, file) {
					switch {
					case a.Bare:
						pass.Reportf(a.Pos,
							"bare //lint:allow: the escape hatch is //lint:allow <analyzer>: <reason>, and the reason is required")
					case !names[a.Analyzer]:
						pass.Reportf(a.Pos,
							"//lint:allow names unknown analyzer %q; it suppresses nothing", a.Analyzer)
					}
				}
			}
			return nil
		},
	}
}
