// Fixture for lintallow: every malformed escape shape, one per
// function. The want expectations use the block form because the
// diagnostic lands on the allow comment itself.
package lintallow

func noColon() {
	/* want `bare //lint:allow` */ //lint:allow ctxflow
	_ = 0
}

func noReason() {
	/* want `bare //lint:allow` */ //lint:allow ctxflow:
	_ = 0
}

func noName() {
	/* want `bare //lint:allow` */ //lint:allow : because
	_ = 0
}

func commaList() {
	/* want `bare //lint:allow` */ //lint:allow ctxflow,detrain: one allow per analyzer
	_ = 0
}

func unknownName() {
	/* want `names unknown analyzer "nosuchcheck"` */ //lint:allow nosuchcheck: typo'd analyzer
	_ = 0
}

// wellFormed proves a correct allow for another analyzer is not
// lintallow's business (stale detection belongs to the driver and
// only fires for analyzers that ran).
func wellFormed() {
	//lint:allow ctxflow: fixture reason text
	_ = 0
}
