package lintallow_test

import (
	"testing"

	"surf/lint/analysis/analysistest"
	"surf/lint/analyzers/lintallow"
)

func TestLintallow(t *testing.T) {
	known := []string{"atomicsnap", "ctxflow", "detrain", "errenvelope", "obslabel"}
	analysistest.Run(t, analysistest.TestData(), lintallow.New(known), "lintallow")
}
