// Fixture for errenvelope: a miniature of the real server package —
// envelope writers, a recorder, handlers that stay inside the
// envelope, and the pre-PR 7 regression shapes that bypass it.
package server

import (
	"errors"
	"fmt"
	"net/http"
)

// errBad stands in for the real sentinel set statusFor maps.
var errBad = errors.New("server: bad")

func statusFor(err error) (int, string) {
	if errors.Is(err, errBad) {
		return http.StatusBadRequest, "bad_query"
	}
	return http.StatusInternalServerError, "internal"
}

// writeJSON is the envelope writer: the one place raw status writes
// and the last-resort http.Error are sanctioned.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	if v == nil {
		http.Error(w, "encode failure", http.StatusInternalServerError)
	}
}

func writeError(w http.ResponseWriter, err error) {
	status, _ := statusFor(err)
	writeJSON(w, status, err)
}

// recorder shows ResponseWriter plumbing methods are exempt: a
// wrapper's own WriteHeader must call through.
type recorder struct {
	http.ResponseWriter
	status int
}

func (r *recorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// handleGood stays inside the envelope: sentinels and %w wraps map.
func handleGood(w http.ResponseWriter, r *http.Request) {
	writeError(w, errBad)
	writeError(w, fmt.Errorf("%w: details", errBad))
}

// handleBad is the pre-PR 7 regression: ad-hoc text/plain errors.
func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `raw http\.Error bypasses the unified error envelope`
}

// handleRaw writes its own status and bypasses the envelope.
func handleRaw(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusTeapot) // want `direct WriteHeader bypasses the unified error envelope`
}

// handleInline hands writeError an error no sentinel can match.
func handleInline(w http.ResponseWriter, r *http.Request) {
	writeError(w, errors.New("oops")) // want `inline errors\.New handed to writeError can never match a statusFor sentinel`
}

// handleUnwrapped formats the sentinel away: %v drops the chain.
func handleUnwrapped(w http.ResponseWriter, r *http.Request) {
	writeError(w, fmt.Errorf("bad thing: %v", errBad)) // want `fmt\.Errorf without %w handed to writeError drops the sentinel chain`
}

// handleStream is the sanctioned SSE escape: the 200 must be
// committed before the event loop, under a justified allow.
func handleStream(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/event-stream")
	//lint:allow errenvelope: SSE commits 200 before the event loop; later failures are stream comments
	w.WriteHeader(http.StatusOK)
}
