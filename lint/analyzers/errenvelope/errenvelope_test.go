package errenvelope_test

import (
	"testing"

	"surf/lint/analysis/analysistest"
	"surf/lint/analyzers/errenvelope"
)

func TestErrenvelope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errenvelope.Analyzer, "server")
}
