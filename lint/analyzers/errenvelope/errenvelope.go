// Package errenvelope keeps the server package's error responses
// inside the unified JSON envelope
// {"error":{"code","message","request_id"}}:
//
//   - no raw http.Error — it emits text/plain with none of the
//     envelope fields;
//   - no raw WriteHeader on a ResponseWriter outside the envelope
//     writer (writeJSON) and ResponseWriter plumbing methods — a
//     handler that writes its own status has bypassed the envelope;
//   - errors handed to writeError must be mappable: no inline
//     errors.New (declare a package-level sentinel statusFor can
//     name) and no fmt.Errorf without %w (unwrapped errors all
//     collapse to 500 "internal").
//
// Motivating bug class: before PR 7 each handler formatted its own
// failures, so the same bad query answered text/plain on one route
// and ad-hoc JSON on another, and clients could not dispatch on a
// stable code.
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"surf/lint/analysis"
	"surf/lint/internal/astq"
)

// Analyzer is the errenvelope check.
var Analyzer = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: "server error responses must go through the unified JSON envelope: no raw http.Error or " +
		"WriteHeader outside the envelope writer, and writeError arguments must wrap mappable sentinels",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The envelope discipline is the serving layer's contract; other
	// packages (obs exposition, CLIs) legitimately write raw responses.
	if pass.Pkg.Name() != "server" {
		return nil
	}
	rw := responseWriterIface(pass.Pkg)
	for _, file := range pass.Files {
		astq.InspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkHTTPError(pass, call, stack)
			checkWriteHeader(pass, call, rw, stack)
			checkWriteErrorArg(pass, call)
			return true
		})
	}
	return nil
}

// responseWriterIface resolves net/http.ResponseWriter from the
// package's imports (nil when the package does not import net/http).
func responseWriterIface(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() == "net/http" {
			if obj := imp.Scope().Lookup("ResponseWriter"); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
		}
	}
	return nil
}

// checkHTTPError flags raw http.Error calls outside the envelope
// writer.
func checkHTTPError(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := astq.CalleeFunc(pass.TypesInfo, call)
	if !astq.IsPkgFunc(fn, "net/http", "Error") {
		return
	}
	if enclosingFuncName(stack) == "writeJSON" {
		return // the envelope writer's own last-resort path
	}
	pass.Reportf(call.Pos(),
		"raw http.Error bypasses the unified error envelope; report failures through writeError")
}

// checkWriteHeader flags direct WriteHeader calls on a ResponseWriter
// outside the envelope writer and the ResponseWriter plumbing methods
// (a wrapper's own Write/WriteHeader/Flush implementations).
func checkWriteHeader(pass *analysis.Pass, call *ast.CallExpr, rw *types.Interface, stack []ast.Node) {
	if rw == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !implementsRW(tv.Type, rw) {
		return
	}
	switch enclosingFuncName(stack) {
	case "writeJSON", "WriteHeader", "Write", "Flush":
		return
	}
	pass.Reportf(call.Pos(),
		"direct WriteHeader bypasses the unified error envelope; send responses through writeJSON/writeError")
}

func implementsRW(t types.Type, rw *types.Interface) bool {
	return types.Implements(t, rw) || types.Implements(types.NewPointer(t), rw)
}

// checkWriteErrorArg enforces sentinel discipline on the error handed
// to writeError: statusFor maps by errors.Is, so the error must carry
// a recognizable sentinel in its chain.
func checkWriteErrorArg(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "writeError" || len(call.Args) < 2 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := astq.CalleeFunc(pass.TypesInfo, arg)
	switch {
	case astq.IsPkgFunc(callee, "errors", "New"):
		pass.Reportf(arg.Pos(),
			"inline errors.New handed to writeError can never match a statusFor sentinel; declare a package-level sentinel var")
	case astq.IsPkgFunc(callee, "fmt", "Errorf") && len(arg.Args) > 0:
		if tv, ok := pass.TypesInfo.Types[arg.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			if !strings.Contains(constant.StringVal(tv.Value), "%w") {
				pass.Reportf(arg.Pos(),
					"fmt.Errorf without %%w handed to writeError drops the sentinel chain; wrap a sentinel so status mapping stays total")
			}
		}
	}
}

// enclosingFuncName returns the name of the innermost enclosing
// function declaration ("" inside a function literal or at top
// level).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return ""
		case *ast.FuncDecl:
			return fn.Name.Name
		}
	}
	return ""
}
