package main

import (
	"path/filepath"
	"testing"
)

// TestSurfLintSelf dogfoods the suite: the checked-in tree — the surf
// module and the lint module itself — must produce zero unexpected
// diagnostics. A finding here means either a real regression slipped
// in or an escape lost its justification; both block the build.
func TestSurfLintSelf(t *testing.T) {
	for _, tc := range []struct {
		name string
		dir  string
	}{
		{"surf module", "../../.."},
		{"lint module", "../.."},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, err := filepath.Abs(tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			if code := run([]string{"-C", dir, "./..."}); code != 0 {
				t.Errorf("surf-lint over %s exited %d, want 0 (findings are printed above)", dir, code)
			}
		})
	}
}

func TestVersionHandshake(t *testing.T) {
	if code := run([]string{"-V=full"}); code != 0 {
		t.Errorf("-V=full exited %d, want 0", code)
	}
}

func TestListAndSelect(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("-list exited %d, want 0", code)
	}
	if code := run([]string{"-checks", "nosuchcheck", "-list"}); code != 0 {
		// -list short-circuits before selection; selection errors need
		// a load attempt.
		t.Errorf("-list with bad -checks exited %d, want 0", code)
	}
	if code := run([]string{"-checks", "nosuchcheck", "-C", "../..", "./analysis/..."}); code != 2 {
		t.Errorf("unknown -checks exited %d, want 2", code)
	}
}
