// Command surf-lint is the multichecker for surf's custom correctness
// analyzers: the machine-enforced invariants the compiler cannot see
// (context flow, atomic snapshot discipline, deterministic training,
// the server error envelope, metrics label cardinality, and the
// //lint:allow escape grammar).
//
// Standalone, over the repository root:
//
//	surf-lint ./...
//	surf-lint -C /path/to/repo ./...
//	surf-lint -checks ctxflow,detrain ./internal/...
//
// It exits 0 on a clean tree and 1 with one "path:line:col: message
// [analyzer]" line per finding otherwise. Suppressions are reviewed
// escapes in the code: //lint:allow <analyzer>: <reason> — bare or
// stale allows are themselves findings.
//
// As a go vet tool (the unitchecker protocol — cmd/go hands the tool
// a JSON config per package):
//
//	go vet -vettool=$(command -v surf-lint) ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"surf/lint/analysis"
	"surf/lint/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("surf-lint", flag.ContinueOnError)
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	checks := fs.String("checks", "all", "comma-separated analyzer names to run, or all")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	version := fs.String("V", "", "version flag for the go vet tool protocol")
	vetFlags := fs.Bool("flags", false, "print the tool's flag set as JSON (go vet tool protocol)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The cmd/go vettool handshake: print an identity line and exit.
		fmt.Printf("surf-lint version v8 (surf custom analyzer suite)\n")
		return 0
	}
	if *vetFlags {
		// cmd/go asks which analyzer flags the tool accepts; none are
		// exposed per-analyzer, so the set is empty.
		fmt.Println("[]")
		return 0
	}
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := suite.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surf-lint:", err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && filepath.Ext(rest[0]) == ".cfg" {
		return runVet(rest[0], analyzers)
	}
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surf-lint:", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surf-lint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "surf-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet JSON config surf-lint
// consumes. Facts do not flow between packages here (no analyzer
// uses them), so PackageVetx inputs are ignored and the VetxOutput
// is written empty to satisfy the protocol.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runVet serves one go vet unit: load the package the config
// describes, analyze, report to stderr in vet's format.
func runVet(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surf-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "surf-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "surf-lint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if cfg.Dir != "" {
		// The source importer resolves module-internal imports
		// relative to the working directory.
		if err := os.Chdir(cfg.Dir); err != nil {
			fmt.Fprintln(os.Stderr, "surf-lint:", err)
			return 1
		}
	}
	pkg, err := loadVetUnit(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surf-lint:", err)
		return 1
	}
	if pkg == nil {
		return 0
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surf-lint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Position, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// loadVetUnit type-checks the production files of one vet unit. Test
// files are dropped — the analyzers enforce production invariants,
// and the standalone driver never loads them either — so a unit that
// is all test files (an external _test package) yields a nil package.
func loadVetUnit(cfg vetConfig) (*analysis.Package, error) {
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return analysis.TypeCheckSource(strings.TrimSuffix(cfg.ImportPath, ".test"), files)
}
