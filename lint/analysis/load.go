package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

func init() {
	// Resolve the whole build — including the std packages the source
	// importer type-checks on demand — without cgo, so loading needs
	// no C toolchain and behaves identically offline and in CI.
	build.Default.CgoEnabled = false
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (./..., package paths) with `go list` in
// dir, then parses and type-checks each matched package. Imports —
// std and intra-module alike — are type-checked from source by the
// stdlib "source" importer, so loading works offline with nothing but
// the go toolchain. Test files are not loaded: the analyzers enforce
// production invariants.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	// The source importer resolves module-internal import paths
	// through the go command relative to the working directory, so it
	// must run with dir as the process working directory.
	restore, err := chdir(dir)
	if err != nil {
		return nil, err
	}
	defer restore()

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := TypeCheck(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheckSource type-checks one package from explicit file paths
// with a fresh FileSet and source importer — the go vet unit path,
// where cmd/go has already resolved the file list.
func TypeCheckSource(pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := TypeCheck(fset, imp, pkgPath, filenames)
	if err != nil {
		return nil, err
	}
	if len(filenames) > 0 {
		pkg.Dir = filepath.Dir(filenames[0])
	}
	return pkg, nil
}

// chdir switches the working directory and returns the restore func.
func chdir(dir string) (func(), error) {
	prev, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	if err := os.Chdir(dir); err != nil {
		return nil, err
	}
	return func() { _ = os.Chdir(prev) }, nil
}

// TypeCheck parses files and type-checks them as one package
// importing through imp. The analyzers need full type information, so
// type errors are fatal — a tree that does not compile cannot be
// soundly linted.
func TypeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
