// Package analysis is a dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough framework — Analyzer,
// Pass, Diagnostic, a go/types-backed package loader and an
// allow-comment filter — to host surf's custom analyzers without
// pulling a module dependency into the repository. The build
// environment is fully offline, so the x/tools suite cannot be
// vendored; the API below mirrors its shape so the analyzers port
// 1:1 if that ever changes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run inspects a single
// type-checked package through its Pass and reports findings with
// pass.Report / pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// //lint:allow <name>: <reason> escape comments. It must be a
	// valid identifier.
	Name string
	// Doc is the one-paragraph description printed by surf-lint -list:
	// what invariant the analyzer enforces and which historical bug
	// motivated it.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver installs it; analyzer
	// code should use it (or Reportf) for every finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position in the package's file set and
// a human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as the driver emits it: the
// analyzer that produced it plus its file position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the finding in the conventional
// path:line:col: message [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}
