package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow is one parsed //lint:allow escape comment. The grammar is
//
//	//lint:allow <analyzer>: <reason>
//
// — exactly one analyzer name, a colon, and a non-empty reason. An
// allow suppresses that analyzer's diagnostics on its own line and on
// the line directly below it (so it can sit at the end of the flagged
// line or on its own line immediately above).
type Allow struct {
	Pos      token.Pos
	Line     int
	Analyzer string
	Reason   string
	// Bare marks a syntactically broken allow: missing name, missing
	// colon, or empty reason. Bare allows suppress nothing and are
	// themselves diagnosed (by the lintallow analyzer).
	Bare bool
}

const allowPrefix = "//lint:allow"

// ParseAllows extracts every //lint:allow comment from a file.
func ParseAllows(fset *token.FileSet, file *ast.File) []Allow {
	var out []Allow
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			a := Allow{Pos: c.Pos(), Line: fset.Position(c.Pos()).Line}
			name, reason, hasColon := strings.Cut(text, ":")
			a.Analyzer = strings.TrimSpace(name)
			a.Reason = strings.TrimSpace(reason)
			if a.Analyzer == "" || !hasColon || a.Reason == "" ||
				strings.ContainsAny(a.Analyzer, " \t,") {
				a.Bare = true
			}
			out = append(out, a)
		}
	}
	return out
}

// FilterAllows drops diagnostics suppressed by a well-formed
// //lint:allow comment for the named analyzer and reports which
// allows matched at least one diagnostic. used has one entry per
// element of allows.
func FilterAllows(fset *token.FileSet, allows []Allow, analyzer string, diags []Diagnostic) (kept []Diagnostic, used []bool) {
	used = make([]bool, len(allows))
	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		suppressed := false
		for i, a := range allows {
			if a.Bare || a.Analyzer != analyzer {
				continue
			}
			if line == a.Line || line == a.Line+1 {
				suppressed = true
				used[i] = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept, used
}
