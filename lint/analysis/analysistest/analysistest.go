// Package analysistest runs an analyzer over fixture packages laid
// out GOPATH-style under testdata/src/<pkg>/ and checks its
// diagnostics against // want comments, mirroring the x/tools
// analysistest contract:
//
//	bad()  // want `regexp matching the diagnostic`
//
// A line may carry several want patterns (each in backquotes or
// double quotes); diagnostics and wants on one line must match one to
// one. The block form `/* want ... */` is equivalent and exists for
// lines whose diagnostic sits on a line comment itself (a bare or
// stale //lint:allow), where a second line comment cannot follow.
// Fixture packages may import each other by their path under
// testdata/src; std imports type-check from source, offline.
//
// The harness applies the driver's //lint:allow filtering before
// matching, so fixtures both prove an analyzer fires and prove its
// escape hatch (and the stale-escape detection) behave.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"surf/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: no caller information")
	}
	dir, err := filepath.Abs(filepath.Join(filepath.Dir(file), "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// fixtureImporter resolves fixture packages from testdata/src and
// everything else through the stdlib source importer.
type fixtureImporter struct {
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*analysis.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	pkg, err := fi.load(path)
	if err == errNotFixture {
		return fi.std.Import(path)
	}
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

var errNotFixture = fmt.Errorf("not a fixture package")

// load type-checks the fixture package at testdata/src/<path>,
// memoized so mutually importing fixtures share one types.Package.
func (fi *fixtureImporter) load(path string) (*analysis.Package, error) {
	if pkg, ok := fi.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, errNotFixture
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, errNotFixture
	}
	pkg, err := analysis.TypeCheck(fi.fset, fi, path, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	fi.pkgs[path] = pkg
	return pkg, nil
}

// Run loads the fixture package at testdata/src/<pkgPath>, runs the
// analyzer, applies //lint:allow filtering plus stale-allow
// detection, and compares the result against the fixture's // want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	fi := &fixtureImporter{
		root: testdata,
		fset: token.NewFileSet(),
		pkgs: map[string]*analysis.Package{},
	}
	fi.std = importer.ForCompiler(fi.fset, "source", nil)
	pkg, err := fi.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, f := range findings {
		k := key{f.Position.Filename, f.Position.Line}
		got[k] = append(got[k], f.Message)
	}

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for k, patterns := range wants {
		msgs := got[k]
		delete(got, k)
		if len(msgs) != len(patterns) {
			t.Errorf("%s:%d: got %d diagnostics %q, want %d matching %v",
				k.file, k.line, len(msgs), msgs, len(patterns), patterns)
			continue
		}
		remaining := append([]string(nil), msgs...)
		for _, p := range patterns {
			matched := -1
			for i, m := range remaining {
				if p.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matches %q among %q", k.file, k.line, p, remaining)
				continue
			}
			remaining = append(remaining[:matched], remaining[matched+1:]...)
		}
	}
	for k, msgs := range got {
		sort.Strings(msgs)
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// wantRE pulls the quoted patterns out of a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWants collects the // want expectations of every fixture file,
// keyed by (file, line).
func parseWants(pkg *analysis.Package) (map[struct {
	file string
	line int
}][]*regexp.Regexp, error) {
	type key = struct {
		file string
		line int
	}
	out := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					if rest, ok = strings.CutPrefix(c.Text, "/* want "); ok {
						rest = strings.TrimSuffix(rest, "*/")
					}
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: // want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					text := m[1]
					if m[2] != "" {
						text = m[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
					}
					k := key{pos.Filename, pos.Line}
					out[k] = append(out[k], re)
				}
			}
		}
	}
	return out, nil
}
