package analysis

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package, applies the
// //lint:allow escape comments, and returns the surviving findings
// sorted by position. Beyond each analyzer's own diagnostics it
// reports allows that suppressed nothing — a stale escape is a lie
// about the code — attributing them to the lintallow pseudo-check.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		var allows []Allow
		for _, f := range pkg.Files {
			allows = append(allows, ParseAllows(pkg.Fset, f)...)
		}
		usedAny := make([]bool, len(allows))
		ranFor := make(map[string]bool, len(analyzers))

		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			kept, used := FilterAllows(pkg.Fset, allows, a.Name, diags)
			for i, u := range used {
				usedAny[i] = usedAny[i] || u
			}
			ranFor[a.Name] = true
			for _, d := range kept {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}

		// An allow for an analyzer that ran but matched no diagnostic
		// is stale; one for an analyzer not in this run is left alone
		// (a partial -checks run must not flag the others' escapes).
		// Bare allows are lintallow's own findings, not duplicated
		// here.
		for i, a := range allows {
			if !a.Bare && ranFor[a.Analyzer] && !usedAny[i] {
				findings = append(findings, Finding{
					Analyzer: "lintallow",
					Position: pkg.Fset.Position(a.Pos),
					Message:  fmt.Sprintf("//lint:allow %s suppresses no diagnostic; delete the stale escape", a.Analyzer),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
