package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"surf/lint/analysis"
)

// reportAt builds a test analyzer that reports one diagnostic at the
// start of each given line.
func reportAt(name string, lines ...int) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer",
		Run: func(pass *analysis.Pass) error {
			tf := pass.Fset.File(pass.Files[0].Pos())
			for _, ln := range lines {
				pass.Reportf(tf.LineStart(ln), "finding on line %d", ln)
			}
			return nil
		},
	}
}

func TestRunStaleAllow(t *testing.T) {
	fset, f := parseFile(t, `package p

//lint:allow check: suppresses the finding below
var a int

//lint:allow check: suppresses nothing — stale
var b int

//lint:allow other: analyzer not in this run; left alone
var c int
`)
	pkg := &analysis.Package{PkgPath: "p", Fset: fset, Files: []*ast.File{f}}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{reportAt("check", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 (the stale allow): %v", len(findings), findings)
	}
	st := findings[0]
	if st.Analyzer != "lintallow" || !strings.Contains(st.Message, "suppresses no diagnostic") {
		t.Errorf("stale finding = %+v", st)
	}
	if st.Position.Line != 6 {
		t.Errorf("stale finding at line %d, want 6 (the stale allow comment)", st.Position.Line)
	}
}

func TestRunBareAllowNotStaleFlagged(t *testing.T) {
	fset, f := parseFile(t, `package p

//lint:allow check
var a int
`)
	pkg := &analysis.Package{PkgPath: "p", Fset: fset, Files: []*ast.File{f}}
	// The bare allow suppresses nothing, but the driver leaves it to
	// the lintallow analyzer rather than double-reporting it as stale.
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{reportAt("check", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Position.Line != 4 {
		t.Fatalf("findings = %v, want only the line-4 diagnostic (bare allows do not suppress)", findings)
	}
}

func TestRunSortsFindings(t *testing.T) {
	fset, f := parseFile(t, `package p

var a int
var b int
`)
	pkg := &analysis.Package{PkgPath: "p", Fset: fset, Files: []*ast.File{f}}
	findings, err := analysis.Run([]*analysis.Package{pkg},
		[]*analysis.Analyzer{reportAt("zeta", 4, 3), reportAt("alpha", 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3", len(findings))
	}
	if findings[0].Analyzer != "alpha" || findings[0].Position.Line != 3 ||
		findings[1].Analyzer != "zeta" || findings[1].Position.Line != 3 ||
		findings[2].Analyzer != "zeta" || findings[2].Position.Line != 4 {
		t.Errorf("findings out of order: %+v", findings)
	}
}
