package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"surf/lint/analysis"
)

func parseFile(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseAllowsGrammar(t *testing.T) {
	fset, f := parseFile(t, `package p

//lint:allow ctxflow: the shared load must outlive one caller
//lint:allow ctxflow
//lint:allow ctxflow:
//lint:allow : reason without a name
//lint:allow ctxflow,detrain: one allow per analyzer
// an unrelated comment
var x int
`)
	allows := analysis.ParseAllows(fset, f)
	if len(allows) != 5 {
		t.Fatalf("got %d allows, want 5: %+v", len(allows), allows)
	}
	well := allows[0]
	if well.Bare || well.Analyzer != "ctxflow" || well.Reason != "the shared load must outlive one caller" {
		t.Errorf("well-formed allow parsed wrong: %+v", well)
	}
	if well.Line != 3 {
		t.Errorf("allow line = %d, want 3", well.Line)
	}
	for i, a := range allows[1:] {
		if !a.Bare {
			t.Errorf("allow %d should be bare: %+v", i+1, a)
		}
	}
}

func TestFilterAllowsAdjacency(t *testing.T) {
	fset, f := parseFile(t, `package p

//lint:allow ctxflow: covers this line and the next
var a int
var b int
`)
	allows := analysis.ParseAllows(fset, f)
	if len(allows) != 1 {
		t.Fatalf("got %d allows, want 1", len(allows))
	}
	lineStart := func(n int) token.Pos { return fset.File(f.Pos()).LineStart(n) }
	diags := []analysis.Diagnostic{
		{Pos: lineStart(3), Message: "on the allow line"},
		{Pos: lineStart(4), Message: "directly below"},
		{Pos: lineStart(5), Message: "out of range"},
	}
	kept, used := analysis.FilterAllows(fset, allows, "ctxflow", diags)
	if len(kept) != 1 || kept[0].Message != "out of range" {
		t.Errorf("kept = %+v, want only the out-of-range diagnostic", kept)
	}
	if !used[0] {
		t.Error("allow should be marked used")
	}

	// The same allow does nothing for a different analyzer.
	kept, used = analysis.FilterAllows(fset, allows, "detrain", diags)
	if len(kept) != 3 || used[0] {
		t.Errorf("cross-analyzer filtering: kept %d (want 3), used=%v (want false)", len(kept), used[0])
	}
}
