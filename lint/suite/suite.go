// Package suite assembles the surf-lint analyzer set. The surf-lint
// binary and the self-test both draw from here, so the checked-in
// tree and CI always agree on what "clean" means.
package suite

import (
	"surf/lint/analysis"
	"surf/lint/analyzers/atomicsnap"
	"surf/lint/analyzers/ctxflow"
	"surf/lint/analyzers/detrain"
	"surf/lint/analyzers/errenvelope"
	"surf/lint/analyzers/lintallow"
	"surf/lint/analyzers/obslabel"
)

// Analyzers returns the full suite, lintallow included (built over
// the suite's own names so every //lint:allow must reference a real
// analyzer).
func Analyzers() []*analysis.Analyzer {
	base := []*analysis.Analyzer{
		atomicsnap.Analyzer,
		ctxflow.Analyzer,
		detrain.Analyzer,
		errenvelope.Analyzer,
		obslabel.Analyzer,
	}
	names := make([]string, 0, len(base))
	for _, a := range base {
		names = append(names, a.Name)
	}
	return append(base, lintallow.New(names))
}

// Select resolves a comma-separated analyzer list ("all" or empty
// selects everything).
func Select(checks string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if checks == "" || checks == "all" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range splitComma(checks) {
		a, ok := byName[name]
		if !ok {
			return nil, &UnknownCheckError{Name: name}
		}
		out = append(out, a)
	}
	return out, nil
}

// UnknownCheckError reports a -checks entry naming no analyzer.
type UnknownCheckError struct{ Name string }

func (e *UnknownCheckError) Error() string {
	return "unknown analyzer " + e.Name + " (surf-lint -list prints the suite)"
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
