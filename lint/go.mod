module surf/lint

go 1.23
