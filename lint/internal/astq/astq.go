// Package astq holds the small AST/type query helpers shared by the
// surf-lint analyzers.
package astq

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves a call expression to the declared function or
// method it invokes, or nil for builtins, conversions and calls of
// function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function (not a
// method) pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// InspectStack walks the file like ast.Inspect but hands f the stack
// of enclosing nodes (outermost first, excluding n itself).
func InspectStack(file *ast.File, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// RootIdent peels selectors, indexing, dereferences and parens off an
// expression and returns the base identifier, or nil when the base is
// not an identifier (a call result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// NamedOrigin unwraps e's type to the origin named type (resolving
// aliases, pointers and generic instances), or nil.
func NamedOrigin(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// IsNamedType reports whether t (possibly behind a pointer or alias)
// is the named type pkgName.typeName, matching the package by name —
// fixtures stand in for real packages under different import paths.
func IsNamedType(t types.Type, pkgName, typeName string) bool {
	n := NamedOrigin(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && n.Obj().Pkg().Name() == pkgName
}

// HasContextParam reports whether sig has a parameter of type
// context.Context.
func HasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n := NamedOrigin(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Context" && n.Obj().Pkg().Path() == "context"
}
