package surf

import (
	"errors"
	"testing"
)

// TestStatisticStringTable pins the wire names of every statistic and
// the fallback formatting of unknown values.
func TestStatisticStringTable(t *testing.T) {
	cases := []struct {
		stat Statistic
		want string
	}{
		{Count, "count"},
		{Sum, "sum"},
		{Mean, "mean"},
		{Min, "min"},
		{Max, "max"},
		{Median, "median"},
		{Variance, "variance"},
		{StdDev, "stddev"},
		{Ratio, "ratio"},
		{Statistic(99), "Statistic(99)"},
		{Statistic(-1), "Statistic(-1)"},
	}
	for _, c := range cases {
		if got := c.stat.String(); got != c.want {
			t.Errorf("Statistic(%d).String() = %q, want %q", int(c.stat), got, c.want)
		}
	}
}

// TestParseStatisticTable covers round trips plus the error paths.
func TestParseStatisticTable(t *testing.T) {
	cases := []struct {
		name    string
		want    Statistic
		wantErr bool
	}{
		{"count", Count, false},
		{"sum", Sum, false},
		{"mean", Mean, false},
		{"min", Min, false},
		{"max", Max, false},
		{"median", Median, false},
		{"variance", Variance, false},
		{"stddev", StdDev, false},
		{"ratio", Ratio, false},
		{"nope", 0, true},
		{"", 0, true},
		{"COUNT", 0, true}, // names are case-sensitive
		{"Statistic(99)", 0, true},
	}
	for _, c := range cases {
		got, err := ParseStatistic(c.name)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseStatistic(%q) = %v, want error", c.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStatistic(%q): %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStatistic(%q) = %v, want %v", c.name, got, c.want)
		}
	}
	// Full round trip: every defined statistic survives String →
	// ParseStatistic.
	for s := Count; s <= Ratio; s++ {
		back, err := ParseStatistic(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v -> %q -> (%v, %v)", s, s.String(), back, err)
		}
	}
}

// TestCustomStatisticRoundTrip covers registration, String/Parse
// round trips over built-in and custom statistics together, and the
// registration error paths.
func TestCustomStatisticRoundTrip(t *testing.T) {
	constant := func(rows [][]float64) float64 { return 42 }
	custom, err := CustomStatistic("test-roundtrip", constant)
	if err != nil {
		t.Fatal(err)
	}
	if custom.String() != "test-roundtrip" {
		t.Errorf("String() = %q, want the registered name", custom.String())
	}
	all := []Statistic{Count, Sum, Mean, Min, Max, Median, Variance, StdDev, Ratio, custom}
	for _, s := range all {
		back, err := ParseStatistic(s.String())
		if err != nil {
			t.Errorf("ParseStatistic(%q): %v", s.String(), err)
			continue
		}
		if back != s {
			t.Errorf("round trip %v -> %q -> %v", s, s.String(), back)
		}
	}

	// Error paths, all classified ErrBadConfig.
	for name, tc := range map[string]struct {
		name string
		fn   func([][]float64) float64
	}{
		"empty name":     {"", constant},
		"nil fn":         {"test-nilfn", nil},
		"builtin shadow": {"count", constant},
		"duplicate":      {"test-roundtrip", constant},
	} {
		if _, err := CustomStatistic(tc.name, tc.fn); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}

	// Unregistered out-of-range values still format and fail to parse.
	if got := Statistic(1 << 20).String(); got != "Statistic(1048576)" {
		t.Errorf("out-of-range String() = %q", got)
	}
	if _, err := ParseStatistic("test-unregistered"); err == nil {
		t.Error("expected error for unregistered custom name")
	}
}
