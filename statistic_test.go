package surf

import "testing"

// TestStatisticStringTable pins the wire names of every statistic and
// the fallback formatting of unknown values.
func TestStatisticStringTable(t *testing.T) {
	cases := []struct {
		stat Statistic
		want string
	}{
		{Count, "count"},
		{Sum, "sum"},
		{Mean, "mean"},
		{Min, "min"},
		{Max, "max"},
		{Median, "median"},
		{Variance, "variance"},
		{StdDev, "stddev"},
		{Ratio, "ratio"},
		{Statistic(99), "Statistic(99)"},
		{Statistic(-1), "Statistic(-1)"},
	}
	for _, c := range cases {
		if got := c.stat.String(); got != c.want {
			t.Errorf("Statistic(%d).String() = %q, want %q", int(c.stat), got, c.want)
		}
	}
}

// TestParseStatisticTable covers round trips plus the error paths.
func TestParseStatisticTable(t *testing.T) {
	cases := []struct {
		name    string
		want    Statistic
		wantErr bool
	}{
		{"count", Count, false},
		{"sum", Sum, false},
		{"mean", Mean, false},
		{"min", Min, false},
		{"max", Max, false},
		{"median", Median, false},
		{"variance", Variance, false},
		{"stddev", StdDev, false},
		{"ratio", Ratio, false},
		{"nope", 0, true},
		{"", 0, true},
		{"COUNT", 0, true}, // names are case-sensitive
		{"Statistic(99)", 0, true},
	}
	for _, c := range cases {
		got, err := ParseStatistic(c.name)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseStatistic(%q) = %v, want error", c.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStatistic(%q): %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStatistic(%q) = %v, want %v", c.name, got, c.want)
		}
	}
	// Full round trip: every defined statistic survives String →
	// ParseStatistic.
	for s := Count; s <= Ratio; s++ {
		back, err := ParseStatistic(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v -> %q -> (%v, %v)", s, s.String(), back, err)
		}
	}
}
