package surf

import (
	"surf/internal/core"
	"surf/internal/geom"
)

// MergeRegions reduces regions mined by several independent runs over
// the same domain — typically one Find per data shard of a partitioned
// dataset — to one deduplicated, capped list, applying the same greedy
// IoU clustering the engine uses to deduplicate a single swarm's
// converged particles.
//
// Regions are taken in the given order, which callers establish as the
// rank order (best first: concatenate the per-run lists and sort by
// Score for threshold queries, or by Estimate for top-k). A region
// whose box overlaps an already-accepted region with IoU >= dedupeIoU
// merges into it, adding its Worms count; the accepted list caps at
// maxRegions. dedupeIoU 0 applies the engine default (0.3), maxRegions
// 0 the engine default (16). Accepted regions are returned exactly as
// given — no re-evaluation — so merging identical ranked inputs yields
// the identical output, the property the sharded-execution
// differential tests pin.
func MergeRegions(regions []Region, dedupeIoU float64, maxRegions int) []Region {
	cands := make([]core.Region, len(regions))
	for i, r := range regions {
		cands[i] = core.Region{
			Rect:          geom.Rect{Min: r.Min, Max: r.Max},
			Score:         r.Score,
			Estimate:      r.Estimate,
			Worms:         r.Worms,
			TrueValue:     r.TrueValue,
			Verified:      r.Verified,
			SatisfiesTrue: r.Satisfies,
		}
	}
	merged := core.MergeRankedRegions(cands, dedupeIoU, maxRegions)
	out := make([]Region, len(merged))
	for i, r := range merged {
		out[i] = regionFromCore(r)
	}
	return out
}
