package surf

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"surf/internal/core"
)

// defaultCacheSize is the result cache capacity an engine gets when
// WithResultCache is not given. Results are small (a handful of
// regions with 2d coordinates each), so the default is sized for "the
// same dashboard asks the same few queries over and over" rather than
// for memory pressure.
const defaultCacheSize = 64

// resultCache is a snapshot-keyed LRU over canonicalized queries.
// Keys embed the identity of the surrogate snapshot the query ran
// against, so a cached entry can never be served across a model swap;
// the engine additionally clears the cache whenever the snapshot
// pointer swaps, since entries under the old snapshot are dead weight
// the moment it is replaced.
//
// Entries store deep copies and lookups return deep copies: callers
// are free to mutate the Result they get back (batch and cached calls
// behave identically), and a later mutation can never poison the
// cache.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
	// hits and misses are atomics, not mutex-guarded fields: a scrape
	// of the counters must never contend with the query hot path.
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	key string
	res *Result
}

// newResultCache returns a cache holding up to capacity results;
// capacity <= 0 disables caching entirely.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return &resultCache{}
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// enabled reports whether the cache can ever hold an entry.
func (c *resultCache) enabled() bool { return c != nil && c.cap > 0 }

// get returns a copy of the cached result for key and marks it most
// recently used.
func (c *resultCache) get(key string) (*Result, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return copyResult(el.Value.(*cacheEntry).res), true
}

// put stores a copy of res under key, evicting the least recently
// used entry when full.
func (c *resultCache) put(key string, res *Result) {
	if !c.enabled() || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = copyResult(res)
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: copyResult(res)})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// clear drops every entry (the engine calls it on snapshot swaps).
func (c *resultCache) clear() {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

// len reports the number of live entries (for tests).
func (c *resultCache) len() int {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time snapshot of a result cache's
// effectiveness, as reported by Engine.CacheStats. Hits and Misses
// accumulate over the engine's lifetime (they survive the clears a
// train/load triggers — a hit ratio that resets on every hot swap
// would be useless for monitoring); Entries and Capacity describe the
// cache's current occupancy.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// stats snapshots the cache counters. Hits and misses are read
// without the mutex — each is individually consistent, which is all a
// metrics scrape needs.
func (c *resultCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Entries:  c.len(),
		Capacity: c.cap,
	}
}

// copyResult deep-copies a result so cache entries and caller-visible
// results never share backing arrays.
func copyResult(r *Result) *Result {
	out := *r
	out.Regions = make([]Region, len(r.Regions))
	for i, reg := range r.Regions {
		reg.Min = append([]float64(nil), reg.Min...)
		reg.Max = append([]float64(nil), reg.Max...)
		out.Regions[i] = reg
	}
	return &out
}

// cacheKey canonicalizes the query — every "zero means default" knob
// is resolved to its effective value, via the same constants and
// helpers the execution path defaults with (core.DefaultC and kin,
// gsoParams), so a default change can never alias two queries to one
// entry — and knobs that cannot change the result (Workers: batch
// shards are bit-identical to sequential evaluation) are dropped.
// The key binds to the snapshot's generation number; two queries get
// the same key exactly when they are guaranteed to produce the same
// Result against the same snapshot. Floats render with %g shortest
// form, which round-trips float64 uniquely, so distinct values never
// collide.
func (q Query) cacheKey(dims int, snap *snapshot) string {
	return fmt.Sprintf("%d|%s", snap.generation(), q.CacheKey(dims))
}

// cacheKey is Query.cacheKey for top-k queries.
func (q TopKQuery) cacheKey(dims int, snap *snapshot) string {
	return fmt.Sprintf("%d|%s", snap.generation(), q.CacheKey(dims))
}

// CacheKey returns a canonical fingerprint of the query's effective
// execution parameters for an engine of the given dimensionality: two
// queries get the same key exactly when they are guaranteed to produce
// the same Result against the same model and data. It is the
// scope-free form of the engine's internal result-cache key — external
// caches (a multi-dataset registry caching sharded merged results, a
// fronting proxy) combine it with their own scope, typically the
// dataset name and artifact version, and must invalidate that scope
// whenever the underlying model or data changes.
func (q Query) CacheKey(dims int) string {
	kde := 0
	if q.UseKDE {
		kde = q.KDESample
		if kde == 0 {
			kde = defaultKDESample
		}
	}
	return fmt.Sprintf("find|%g|%t|%g|%d|%t|%t|%d|%s|%g|%g|%t|%t",
		q.Threshold, q.Above, withDefault(q.C, core.DefaultC),
		withIntDefault(q.MaxRegions, core.DefaultMaxRegions), q.UseTrueFunction,
		q.UseKDE, kde, canonicalGSO(dims, q.Glowworms, q.Iterations, q.Seed),
		withDefault(q.MinSideFrac, core.DefaultMinSideFrac),
		withDefault(q.MaxSideFrac, core.DefaultMaxSideFrac),
		q.SkipVerify, q.ClusterExtents)
}

// CacheKey is Query.CacheKey for top-k queries.
func (q TopKQuery) CacheKey(dims int) string {
	return fmt.Sprintf("topk|%d|%t|%g|%t|%s|%g|%g|%t",
		q.K, q.Largest, withDefault(q.C, core.DefaultC), q.UseTrueFunction,
		canonicalGSO(dims, q.Glowworms, q.Iterations, q.Seed),
		withDefault(q.MinSideFrac, core.DefaultMinSideFrac),
		withDefault(q.MaxSideFrac, core.DefaultMaxSideFrac),
		q.SkipVerify)
}

// canonicalGSO resolves the optimizer knobs through gsoParams itself
// — the single defaulting source the execution path uses. The seed is
// kept raw rather than resolved to the optimizer default:
// KDE-weighted queries derive their sampling seed as Seed+17, so Seed
// 0 and the optimizer-default seed are not interchangeable for every
// query shape, and a missed cache hit is harmless where an aliased
// one is not.
func canonicalGSO(dims, glowworms, iterations int, seed uint64) string {
	g := gsoParams(dims, glowworms, iterations, 0, 0)
	return fmt.Sprintf("%d/%d/%d", g.Glowworms, g.MaxIters, seed)
}

func withDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

func withIntDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
