package surf

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFindContextPreCancelled(t *testing.T) {
	d := crimeGrid(500, 31)
	eng, err := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.FindContext(ctx, Query{Threshold: 10, Above: true, UseTrueFunction: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled FindContext returned %v, want context.Canceled", err)
	}
	if _, err := eng.FindTopKContext(ctx, TopKQuery{K: 1, Largest: true, UseTrueFunction: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled FindTopKContext returned %v, want context.Canceled", err)
	}
	if _, err := eng.GenerateWorkloadContext(ctx, 10, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled GenerateWorkloadContext returned %v, want context.Canceled", err)
	}
}

// TestFindContextCancelMidRun cancels a deliberately expensive query
// (true-function mode, huge iteration budget) shortly after it starts
// and asserts it returns ctx.Err() promptly — within one swarm
// iteration, not after the full budget.
func TestFindContextCancelMidRun(t *testing.T) {
	d := crimeGrid(20000, 32)
	// No grid index: every objective evaluation is an O(N) scan, so a
	// full 100k-iteration run would take minutes.
	eng, err := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = eng.FindContext(ctx, Query{
		Threshold: 100, Above: true, UseTrueFunction: true,
		Iterations: 100000, Seed: 3,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FindContext returned %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled FindContext took %s, want prompt return", elapsed)
	}
}

func TestTrainSurrogateContextCancelled(t *testing.T) {
	d := crimeGrid(1000, 33)
	eng, _ := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
	wl, err := eng.GenerateWorkload(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.TrainSurrogateContext(ctx, wl); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled TrainSurrogateContext returned %v, want context.Canceled", err)
	}
	if eng.HasSurrogate() {
		t.Error("cancelled training must not install a surrogate")
	}
}

// TestTrainSurrogateContextCancelMidTrain is the regression test for
// the dropped-context bug: the non-hypertuned TrainSurrogateContext
// used to call core training without the ctx, so cancellation was a
// no-op and a huge fit ran to completion. Now a cancel mid-train must
// return context.Canceled within one boosting round and leave the
// engine's surrogate snapshot — model and provenance — untouched.
func TestTrainSurrogateContextCancelMidTrain(t *testing.T) {
	d := crimeGrid(2000, 36)
	eng, err := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count, UseGridIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := eng.GenerateWorkload(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Install a small surrogate first so "snapshot unchanged" is
	// observable through predictions and provenance.
	if err := eng.TrainSurrogate(wl, TrainOptions{Trees: 12}); err != nil {
		t.Fatal(err)
	}
	center, half := []float64{0.5, 0.5}, []float64{0.2, 0.2}
	before, err := eng.PredictStatistic(center, half)
	if err != nil {
		t.Fatal(err)
	}
	infoBefore, _ := eng.SurrogateInfo()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = eng.TrainSurrogateContext(ctx, wl, TrainOptions{Trees: 1_000_000})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled TrainSurrogateContext returned %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled TrainSurrogateContext took %s, want a within-one-round return", elapsed)
	}
	after, err := eng.PredictStatistic(center, half)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("cancelled training changed predictions: %g -> %g", before, after)
	}
	infoAfter, _ := eng.SurrogateInfo()
	if infoAfter.Trees != infoBefore.Trees || infoAfter.TrainedQueries != infoBefore.TrainedQueries {
		t.Errorf("cancelled training swapped the snapshot: %+v -> %+v", infoBefore, infoAfter)
	}
}

// TestConcurrentFindAndTrain runs Find queries against one engine
// while TrainSurrogate repeatedly swaps the model. Run under
// `go test -race` this asserts the atomic-snapshot design is sound.
func TestConcurrentFindAndTrain(t *testing.T) {
	d := crimeGrid(2000, 34)
	eng, err := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count, UseGridIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := eng.GenerateWorkload(400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.TrainSurrogate(wl, TrainOptions{Trees: 20}); err != nil {
		t.Fatal(err)
	}

	const queriers = 4
	const trainRounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, queriers*trainRounds+trainRounds)
	stop := make(chan struct{})

	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := eng.Find(Query{
					Threshold: 50, Above: true, Iterations: 10,
					SkipVerify: true, Seed: seed,
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(uint64(i + 1))
	}
	for r := 0; r < trainRounds; r++ {
		if err := eng.TrainSurrogate(wl, TrainOptions{Trees: 10 + r, Seed: uint64(r + 1)}); err != nil {
			errs <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent find/train: %v", err)
	}
}

// TestSessionPinsSurrogateSnapshot checks that a Session keeps serving
// the model it was created with even after the engine retrains.
func TestSessionPinsSurrogateSnapshot(t *testing.T) {
	d := crimeGrid(3000, 35)
	eng, _ := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
	wl, err := eng.GenerateWorkload(600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.TrainSurrogate(wl, TrainOptions{Trees: 40}); err != nil {
		t.Fatal(err)
	}
	sess := eng.Session()
	center, half := []float64{0.7, 0.3}, []float64{0.1, 0.1}
	before, err := sess.PredictStatistic(center, half)
	if err != nil {
		t.Fatal(err)
	}
	// Retrain with a very different model; the engine moves on, the
	// session must not.
	if err := eng.TrainSurrogate(wl, TrainOptions{Trees: 5, MaxDepth: 2, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	after, err := sess.PredictStatistic(center, half)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("session prediction drifted after retrain: %g -> %g", before, after)
	}
	// A fresh session sees the new model.
	fresh, err := eng.Session().PredictStatistic(center, half)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == before {
		t.Log("new model predicts identically at probe point (unusual but not an error)")
	}
	// Sessions created before any training report no surrogate.
	eng2, _ := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
	s2 := eng2.Session()
	if s2.HasSurrogate() {
		t.Error("empty engine session claims a surrogate")
	}
	if _, err := s2.Find(Query{Threshold: 10, Above: true}); !errors.Is(err, ErrNoSurrogate) {
		t.Errorf("session Find without surrogate returned %v, want ErrNoSurrogate", err)
	}
}
