package surf

import "errors"

// Sentinel errors classifying API failures. Errors returned by this
// package wrap one of these where applicable, so callers can branch
// with errors.Is instead of matching message strings:
//
//	if errors.Is(err, surf.ErrNoSurrogate) {
//		// train or load a model, then retry
//	}
var (
	// ErrNoSurrogate reports an operation that needs a trained (or
	// loaded) surrogate on an engine that has none — Find without
	// UseTrueFunction, PredictStatistic, SaveSurrogate.
	ErrNoSurrogate = errors.New("surf: no surrogate trained")

	// ErrDimMismatch reports mismatched region dimensionality, e.g.
	// loading a 3-dim surrogate into a 2-dim engine or passing a
	// domain override of the wrong length.
	ErrDimMismatch = errors.New("surf: dimension mismatch")

	// ErrBadConfig reports an invalid Config or Option at Open time.
	ErrBadConfig = errors.New("surf: invalid configuration")

	// ErrUnknownColumn reports a filter or target column name absent
	// from the dataset.
	ErrUnknownColumn = errors.New("surf: unknown column")

	// ErrBadQuery reports an invalid Query or TopKQuery.
	ErrBadQuery = errors.New("surf: invalid query")

	// ErrBadArtifact reports a surrogate artifact that cannot be
	// loaded: corrupt or truncated bytes, an unsupported format
	// version, a spec that does not match the engine's (different
	// filter columns, statistic or target), or a custom statistic
	// that is not registered in this process.
	ErrBadArtifact = errors.New("surf: invalid surrogate artifact")
)
