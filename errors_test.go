package surf

import (
	"bytes"
	"errors"
	"testing"
)

// TestSentinelErrors checks that every failure class is reachable via
// errors.Is on its exported sentinel rather than string matching.
func TestSentinelErrors(t *testing.T) {
	d := crimeGrid(300, 51)

	t.Run("ErrBadConfig", func(t *testing.T) {
		cases := []struct {
			name string
			ds   *Dataset
			cfg  Config
		}{
			{"nil dataset", nil, Config{}},
			{"no filters", d, Config{Statistic: Count}},
			{"bad stat", d, Config{FilterColumns: []string{"x"}, Statistic: Statistic(99)}},
			{"target is filter", d, Config{FilterColumns: []string{"x", "y"}, Statistic: Mean, TargetColumn: "y"}},
		}
		for _, c := range cases {
			if _, err := Open(c.ds, c.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("%s: got %v, want ErrBadConfig", c.name, err)
			}
		}
	})

	t.Run("ErrUnknownColumn", func(t *testing.T) {
		if _, err := Open(d, Config{FilterColumns: []string{"zzz"}, Statistic: Count}); !errors.Is(err, ErrUnknownColumn) {
			t.Errorf("bad filter: got %v, want ErrUnknownColumn", err)
		}
		if _, err := Open(d, Config{FilterColumns: []string{"x"}, Statistic: Mean, TargetColumn: "zzz"}); !errors.Is(err, ErrUnknownColumn) {
			t.Errorf("bad target: got %v, want ErrUnknownColumn", err)
		}
	})

	t.Run("ErrNoSurrogate", func(t *testing.T) {
		eng, err := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Find(Query{Threshold: 10, Above: true}); !errors.Is(err, ErrNoSurrogate) {
			t.Errorf("Find: got %v, want ErrNoSurrogate", err)
		}
		if _, err := eng.FindTopK(TopKQuery{K: 1, Largest: true}); !errors.Is(err, ErrNoSurrogate) {
			t.Errorf("FindTopK: got %v, want ErrNoSurrogate", err)
		}
		if _, err := eng.PredictStatistic([]float64{0.5, 0.5}, []float64{0.1, 0.1}); !errors.Is(err, ErrNoSurrogate) {
			t.Errorf("PredictStatistic: got %v, want ErrNoSurrogate", err)
		}
		if err := eng.SaveSurrogate(&bytes.Buffer{}); !errors.Is(err, ErrNoSurrogate) {
			t.Errorf("SaveSurrogate: got %v, want ErrNoSurrogate", err)
		}
	})

	t.Run("ErrDimMismatch", func(t *testing.T) {
		eng2d, _ := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
		wl, err := eng2d.GenerateWorkload(100, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng2d.TrainSurrogate(wl, TrainOptions{Trees: 5}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng2d.SaveSurrogate(&buf); err != nil {
			t.Fatal(err)
		}
		eng1d, _ := Open(d, Config{FilterColumns: []string{"x"}, Statistic: Count})
		if err := eng1d.LoadSurrogate(&buf); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("LoadSurrogate: got %v, want ErrDimMismatch", err)
		}
	})

	t.Run("ErrBadQuery", func(t *testing.T) {
		eng, _ := Open(d, Config{FilterColumns: []string{"x", "y"}, Statistic: Count})
		if _, err := eng.FindTopK(TopKQuery{K: 0, Largest: true, UseTrueFunction: true}); !errors.Is(err, ErrBadQuery) {
			t.Errorf("K=0: got %v, want ErrBadQuery", err)
		}
	})
}
